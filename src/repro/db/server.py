"""The multi-worker database server (prototype architecture, Section 5).

Reproduces Figure 5 of the paper:

* **Request handler (RH) threads** accept incoming requests and route
  them round-robin to worker queues, "regardless of the request's
  transaction type or workload" (Section 6.1).  On arrival, the RH runs
  the scheduler's SetProcessorFreq for the target worker's core.
* **Workers**, one pinned to each core, execute requests from their
  queue non-preemptively, start to finish.  On completion a worker
  pulls the next request (earliest deadline under POLARIS) and runs
  SetProcessorFreq before executing it.
* Under the **OS-baseline** configurations, workers use Shore-MT's
  default FIFO scheduling and never touch frequencies; an attached
  governor (static or dynamic) controls each core instead.

Frequency changes go through each core's MSR file, as the prototype's
direct-MSR path does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.sanitizer import invariant
from repro.core.request import Request, RequestState
from repro.core.routing import RoutingPolicy, make_routing
from repro.cpu.core import Core, Job
from repro.cpu.cstates import C1_ONLY, CStateModel, DEEP_LADDER
from repro.cpu.msr import IA32_PERF_CTL, MsrError, MsrFile, encode_perf_ctl
from repro.cpu.power import CorePowerModel, ServerPowerModel
from repro.cpu.pstates import POLARIS_FREQUENCIES, PStateTable, XEON_E5_2640V3_PSTATES
from repro.cpu.rapl import RaplPackage
from repro.cpu.topology import FrequencyDomain, SocketTopology, make_topology
from repro.db.queues import FifoQueue, RequestQueue
from repro.db.storage.errors import Rollback
from repro.sim.engine import Simulator


class DrainTimeout(RuntimeError):
    """`DatabaseServer.drain` could not empty the server: the virtual
    deadline passed (or the event queue ran dry) with workers still busy
    or holding queued requests.  The message names each undrained worker
    and what it holds."""


class BaselineDispatcher:
    """Shore-MT's default scheduler: FIFO queue, no frequency control."""

    adjusts_on_arrival = False
    name = "fifo-baseline"

    def __init__(self):
        self.queue: RequestQueue = FifoQueue()

    def enqueue(self, request: Request) -> None:
        self.queue.push(request)

    def next_request(self) -> Optional[Request]:
        return self.queue.pop()

    def select_frequency(self, now: float, running: Optional[Request],
                         running_elapsed: float = 0.0) -> Optional[float]:
        return None  # the attached governor owns the frequency

    def record_completion(self, request: Request) -> None:
        pass

    def __len__(self) -> int:
        return len(self.queue)


@dataclass
class ServerConfig:
    """Server shape and execution options.

    The paper's testbed runs 16 workers; the default here is smaller so
    tests and benches stay fast --- load levels are expressed relative
    to peak throughput, so the comparison shape is preserved (see
    DESIGN.md).
    """

    workers: int = 4
    request_handlers: int = 2
    #: Frequencies available to in-DBMS schedulers (the paper's five).
    scheduler_frequencies: Tuple[float, ...] = POLARIS_FREQUENCIES
    #: P-state grid of the cores (governors may use the full grid).
    pstate_grid: Optional[PStateTable] = None
    #: Execute transaction bodies against a real storage engine.
    functional_execution: bool = False
    #: DVFS transition stall (seconds); the paper's MSR path is sub-us.
    transition_latency: float = 0.0
    #: Request routing across workers: "rh-round-robin" reproduces the
    #: prototype's per-RH rotation (Section 5); "round-robin",
    #: "least-loaded", and "packing" come from repro.core.routing (the
    #: Section 8 extension).
    routing: str = "rh-round-robin"
    #: Idle ladder: "c1" (the paper's effective setting) or "deep"
    #: (C1/C3/C6 demotion, for the worker-parking extension).
    cstate_ladder: str = "c1"
    #: Frequency-domain granularity: ``None``/"per-core" (independent
    #: P-state registers, the paper's assumption and today's default),
    #: "per-module"/"per-socket", or an explicit
    #: :class:`~repro.cpu.topology.SocketTopology`.  Coarse domains
    #: resolve member requests with the cpufreq max-of-votes rule.
    topology: Optional[object] = None

    def grid(self) -> PStateTable:
        return self.pstate_grid or XEON_E5_2640V3_PSTATES

    def make_topology(self) -> SocketTopology:
        return make_topology(self.topology)

    def make_cstates(self) -> CStateModel:
        if self.cstate_ladder == "c1":
            return CStateModel(C1_ONLY)
        if self.cstate_ladder == "deep":
            return CStateModel(DEEP_LADDER)
        raise ValueError(f"unknown C-state ladder {self.cstate_ladder!r}")


class Worker:
    """One worker thread pinned to one core.

    ``accept``/``_dispatch_next``/``_on_complete`` run once per
    transaction and dominate the server-side profile after the
    scheduler walk; they bind hot attributes to locals and the class
    uses ``__slots__`` to keep attribute access on the fast path.
    """

    __slots__ = ("worker_id", "core", "msr", "dispatcher", "server",
                 "current", "completed", "_transitions_at_dispatch",
                 "tracer", "trace_track", "_admits")

    def __init__(self, worker_id: int, core: Core, msr: MsrFile,
                 dispatcher, server: "DatabaseServer"):
        self.worker_id = worker_id
        self.core = core
        self.msr = msr
        self.dispatcher = dispatcher
        self.server = server
        #: Admission-control hook, resolved once --- the dispatcher is
        #: fixed for the worker's lifetime and getattr on every arrival
        #: is measurable.
        self._admits = getattr(dispatcher, "admits", None)
        self.current: Optional[Request] = None
        self.completed = 0
        self._transitions_at_dispatch = 0
        #: repro.obs: inherited through the simulator like simsan; each
        #: worker gets its own track for execution spans, queue-depth
        #: counters, and SetProcessorFreq decision instants.
        self.tracer = server.sim.tracer
        self.trace_track = self.tracer.track("server",
                                             f"worker-{worker_id}")
        if self.tracer.enabled and hasattr(dispatcher, "trace_decisions"):
            # Schedulers that can explain their choices do so only when
            # someone is listening (see PolarisScheduler.last_decision).
            dispatcher.trace_decisions = True

    def _trace_decision(self, name: str, freq_ghz: Optional[float]) -> None:
        """Emit a SetProcessorFreq instant with the scheduler's stated
        reasoning (slack, floor, queue length) attached when available."""
        decision = getattr(self.dispatcher, "last_decision", None)
        if decision is not None:
            self.tracer.instant(self.trace_track, name,
                                self.server.sim.now, **decision)
        elif freq_ghz is not None:
            self.tracer.instant(self.trace_track, name,
                                self.server.sim.now, selected_ghz=freq_ghz)

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self.current is None

    def queue_length(self) -> int:
        return len(self.dispatcher)

    def _apply_frequency(self, freq_ghz: Optional[float]) -> None:
        if freq_ghz is None:
            return
        resilience = self.server.resilience
        if resilience is not None:
            # Any new decision supersedes an in-flight DVFS retry.
            resilience.cancel_retry(self)
        if self.core.domain is None \
                and abs(freq_ghz - self.core.freq) <= 1e-12:
            # Per-core only: "already there" means nothing to write.
            # Under a shared domain the core may be riding a sibling's
            # higher vote while its own recorded vote is stale, so a
            # same-frequency decision must still be filed --- dropping
            # it would pin the domain high after the sibling steps down.
            return
        try:
            self.msr.write(IA32_PERF_CTL, encode_perf_ctl(freq_ghz))
        except MsrError:
            if not self.server.faults_active:
                raise
            # Injected DVFS write failure: the core rides its current
            # P-state; the resilience layer (if armed) owns the retry.
            if resilience is not None:
                resilience.on_msr_failure(self, freq_ghz)
            return
        if self.server.faults_active and resilience is not None:
            # Verify the write took effect (a "stuck" fault drops it
            # silently).  Throttle clamping --- and, under a shared
            # domain, a sibling's higher vote --- is expected, not a
            # failure: compare against the domain-aware projection.
            expected_ghz = self.core.projected_frequency(freq_ghz)
            if abs(self.core.freq - expected_ghz) > 1e-12:
                resilience.on_msr_failure(self, freq_ghz)

    def pin_frequency(self, freq_ghz: float) -> None:
        """Force a P-state outside the dispatcher's decision path (the
        resilience layer's panic-mode pin).  Same write/retry semantics
        as scheduler decisions."""
        self._apply_frequency(freq_ghz)

    # ------------------------------------------------------------------
    # Arrival path (run by a request-handler thread)
    # ------------------------------------------------------------------
    def accept(self, request: Request) -> None:
        """Enqueue a routed request and run the arrival-path actions.

        Admission control (if the dispatcher implements it) runs first:
        a rejected request never enters the queue and is reported to the
        server's rejection listeners.  When a resilience controller with
        load shedding is attached, overload shedding runs even earlier
        (a queue past the shed depth rejects before the dispatcher is
        consulted at all).
        """
        server = self.server
        dispatcher = self.dispatcher
        tracer = self.tracer
        resilience = server.resilience
        if resilience is not None and resilience.maybe_shed(self, request):
            request.state = RequestState.REJECTED
            if tracer.enabled:
                tracer.instant(self.trace_track, "txn:shed",
                               server.sim.now,
                               txn_type=request.txn_type,
                               deadline=request.deadline)
            server.notify_rejection(request)
            return
        admits = self._admits
        if admits is not None and not admits(
                server.sim.now, self.current,
                self.core.running_elapsed(), request):
            request.state = RequestState.REJECTED
            if tracer.enabled:
                tracer.instant(self.trace_track, "txn:rejected",
                               server.sim.now,
                               txn_type=request.txn_type,
                               deadline=request.deadline)
            server.notify_rejection(request)
            return
        dispatcher.enqueue(request)
        if tracer.enabled:
            now_s = server.sim.now
            tracer.async_begin("txn", request.request_id,
                               f"txn:{request.txn_type}", now_s,
                               worker=self.worker_id,
                               deadline=request.deadline)
            tracer.counter(self.trace_track,
                           f"queue_depth.w{self.worker_id}", now_s,
                           depth=len(dispatcher))
        if self.current is None:
            self._dispatch_next()
        elif dispatcher.adjusts_on_arrival:
            freq = dispatcher.select_frequency(
                server.sim.now, self.current,
                self.core.running_elapsed())
            if tracer.enabled:
                self._trace_decision("setfreq:arrival", freq)
            self._apply_frequency(freq)

    # ------------------------------------------------------------------
    # Degraded-mode entry points (repro.faults)
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Dispatch if idle --- called when a stalled core resumes, so
        requests that queued up during the freeze start draining."""
        if self.idle and not self.core.stalled:
            self._dispatch_next()

    def receive_migrated(self, request: Request) -> None:
        """Adopt a request migrated off a quarantined worker.

        Bypasses admission control and shedding --- the request was
        already admitted once; migration must never lose it.  The
        dispatcher re-sorts it by deadline (EDF queues) and the same
        arrival-path frequency adjustment runs as for a fresh arrival.
        """
        self.dispatcher.enqueue(request)
        if self.tracer.enabled:
            now_s = self.server.sim.now
            self.tracer.async_instant("txn", request.request_id,
                                      "txn:migrated", now_s,
                                      worker=self.worker_id)
            self.tracer.counter(self.trace_track,
                                f"queue_depth.w{self.worker_id}", now_s,
                                depth=len(self.dispatcher))
        if self.idle:
            self._dispatch_next()
        elif self.dispatcher.adjusts_on_arrival:
            freq = self.dispatcher.select_frequency(
                self.server.sim.now, self.current,
                self.core.running_elapsed())
            if self.tracer.enabled:
                self._trace_decision("setfreq:migrated", freq)
            self._apply_frequency(freq)

    # ------------------------------------------------------------------
    # Completion path (run by the worker itself)
    # ------------------------------------------------------------------
    def _dispatch_next(self) -> None:
        core = self.core
        if core.stalled:
            # A frozen core cannot start work; arrivals keep queueing
            # until the watchdog migrates them or the core resumes.
            return
        dispatcher = self.dispatcher
        server = self.server
        request = dispatcher.next_request()
        if request is None:
            # Empty queue: SetProcessorFreq with no constraints selects
            # the lowest frequency (Figure 2 with Q = {} and no t0), so
            # an idling core drops to its floor operating point.
            freq = dispatcher.select_frequency(server.sim.now, None)
            if self.tracer.enabled:
                self._trace_decision("setfreq:idle", freq)
            self._apply_frequency(freq)
            return
        now = server.sim.now
        # SetProcessorFreq before executing the dequeued request: the
        # dequeued transaction is t0 with e0 = 0 (Section 5).
        freq = dispatcher.select_frequency(now, request, 0.0)
        if self.tracer.enabled:
            self._trace_decision("setfreq:dispatch", freq)
            self.tracer.counter(self.trace_track,
                                f"queue_depth.w{self.worker_id}", now,
                                depth=len(dispatcher))
        self._apply_frequency(freq)
        request.state = RequestState.RUNNING
        request.dispatch_time = now
        request.worker_id = self.worker_id
        request.dispatch_freq = core.freq
        self._transitions_at_dispatch = core.freq_transitions
        self.current = request
        if self.tracer.enabled:
            self.tracer.async_instant("txn", request.request_id,
                                      "txn:dispatch", now,
                                      worker=self.worker_id,
                                      freq_ghz=core.freq)
            self.tracer.begin(self.trace_track,
                              f"exec:{request.txn_type}", now,
                              deadline=request.deadline,
                              freq_ghz=core.freq)
        if server.functional_executor is not None:
            request.result = server.functional_executor(request)
        core.start_job(Job(request.work, payload=request),
                       self._on_complete)

    def _on_complete(self, job: Job) -> None:
        server = self.server
        request = job.payload
        assert request is self.current
        request.state = RequestState.DONE
        request.finish_time = server.sim.now
        request.single_freq = \
            self.core.freq_transitions == self._transitions_at_dispatch
        self.current = None
        self.completed += 1
        if self.tracer.enabled:
            now_s = server.sim.now
            met = request.met_deadline
            self.tracer.end(self.trace_track, now_s, met_deadline=met,
                            single_freq=request.single_freq)
            self.tracer.async_end("txn", request.request_id,
                                  f"txn:{request.txn_type}", now_s,
                                  met_deadline=met,
                                  latency_s=request.latency)
        self.dispatcher.record_completion(request)
        server.notify_completion(request)
        self._dispatch_next()


class DatabaseServer:
    """The simulated server: cores, workers, RH routing, power accounting.

    ``scheduler_factory`` builds one in-DBMS scheduler per worker (e.g.
    ``lambda: PolarisScheduler(freqs, shared_estimator)``); passing
    ``None`` installs the FIFO baseline dispatcher, leaving frequency
    control to whatever governor the experiment attaches.
    """

    def __init__(self, sim: Simulator, config: ServerConfig,
                 scheduler_factory: Optional[Callable[[], object]] = None,
                 power_model: Optional[CorePowerModel] = None,
                 initial_freq: Optional[float] = None):
        if config.workers < 1:
            raise ValueError("need at least one worker")
        if config.request_handlers < 1:
            raise ValueError("need at least one request handler")
        self.sim = sim
        self.config = config
        self.power_model = power_model or CorePowerModel()
        self.server_power = ServerPowerModel()
        grid = config.grid()
        if scheduler_factory is not None:
            # In-DBMS schedulers drive the restricted frequency set.
            core_table = grid.subset(config.scheduler_frequencies)
        else:
            core_table = grid

        self.cores: List[Core] = []
        self.workers: List[Worker] = []
        if initial_freq is not None:
            start_freq = initial_freq
        elif scheduler_factory is not None:
            # In-DBMS schedulers explore from the lowest frequency
            # (Section 6.1) and raise cores on demand; cores that never
            # receive work (e.g. parked by the packing router) stay at
            # the floor operating point.
            start_freq = core_table.min_freq
        else:
            start_freq = core_table.max_freq
        self.topology: SocketTopology = config.make_topology()
        if self.topology.per_core:
            effective_latency = config.transition_latency
        else:
            # A shared-PLL re-lock stalls every member core; the slower
            # of the configured DVFS latency and the domain switch
            # latency governs each transition.
            effective_latency = max(config.transition_latency,
                                    self.topology.switch_latency_s)
        for worker_id in range(config.workers):
            core = Core(sim, worker_id, core_table,
                        power_model=self.power_model,
                        cstates=config.make_cstates(),
                        transition_latency=effective_latency,
                        initial_freq=start_freq)
            self.cores.append(core)
        #: Shared frequency domains (topology-aware worker -> core ->
        #: domain mapping).  Empty on the per-core identity topology:
        #: no domain objects exist at all, so every per-core code path
        #: --- traces included --- is bit-identical to the pre-domain
        #: behavior.
        self.domains: List[FrequencyDomain] = []
        if not self.topology.per_core:
            for domain_id, group in enumerate(
                    self.topology.domain_groups(config.workers)):
                self.domains.append(FrequencyDomain(
                    domain_id, [self.cores[i] for i in group]))
        # One RAPL package per 8 cores (two sockets on the testbed).
        self.packages: List[RaplPackage] = []
        for pkg_id in range(0, config.workers, 8):
            self.packages.append(
                RaplPackage(pkg_id // 8, self.cores[pkg_id:pkg_id + 8]))
        package_of = {c.core_id: self.packages[c.core_id // 8]
                      for c in self.cores}
        for worker_id, core in enumerate(self.cores):
            dispatcher = scheduler_factory() if scheduler_factory \
                else BaselineDispatcher()
            msr = MsrFile(core, rapl=package_of[core.core_id])
            self.workers.append(Worker(worker_id, core, msr, dispatcher,
                                       self))

        self._rh_pointers = [rh % config.workers
                             for rh in range(config.request_handlers)]
        self._next_rh = 0
        self._routing: Optional[RoutingPolicy] = None
        if config.routing != "rh-round-robin":
            self._routing = make_routing(config.routing)
        self._completion_listeners: List[Callable[[Request], None]] = []
        self._rejection_listeners: List[Callable[[Request], None]] = []
        self.functional_executor: Optional[Callable[[Request], object]] = None
        self.submitted = 0
        self.rejected = 0
        # --- repro.faults ---------------------------------------------
        #: True while a FaultInjector is attached; workers then treat an
        #: MsrError from a P-state write as an injected fault (degraded
        #: operation) instead of a programming error.
        self.faults_active = False
        #: The attached ResilienceController, or None (healthy runs).
        self.resilience = None
        #: Worker ids the watchdog declared dead; routing probes past
        #: them.  Membership checks only (never iterated).
        self.quarantined = set()

    # ------------------------------------------------------------------
    # Routing (the RH threads)
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept a request as if it arrived from a client.

        One RH thread handles it (they alternate) and routes it to the
        next worker in that RH's round-robin order.
        """
        if self._routing is not None:
            # Routing policies see the eligible (non-quarantined) set
            # directly, so packing's prefix and round-robin's pointer
            # reason over live workers only.  If everything is
            # quarantined the policy sees all workers (the request then
            # queues on a dead one and is ultimately counted as lost,
            # matching the rh-round-robin fall-through below).
            eligible = None
            if self.quarantined:
                eligible = [index for index in range(self.config.workers)
                            if index not in self.quarantined] or None
            worker_index = self._routing.choose_worker(
                self.workers, request, self.sim.now, eligible=eligible)
        else:
            rh = self._next_rh
            self._next_rh = (rh + 1) % self.config.request_handlers
            worker_index = self._rh_pointers[rh]
            self._rh_pointers[rh] = \
                (worker_index + self.config.request_handlers) \
                % self.config.workers
            if self.quarantined:
                # Probe forward past dead workers; if every worker is
                # quarantined, fall through to the original choice (the
                # request then queues and is ultimately counted as lost).
                base = worker_index
                for offset in range(self.config.workers):
                    candidate = (base + offset) % self.config.workers
                    if candidate not in self.quarantined:
                        worker_index = candidate
                        break
        self.submitted += 1
        self.workers[worker_index].accept(request)

    # ------------------------------------------------------------------
    # Completion fan-out
    # ------------------------------------------------------------------
    def add_completion_listener(self,
                                listener: Callable[[Request], None]) -> None:
        self._completion_listeners.append(listener)

    def add_rejection_listener(self,
                               listener: Callable[[Request], None]) -> None:
        self._rejection_listeners.append(listener)

    def notify_completion(self, request: Request) -> None:
        for listener in self._completion_listeners:
            listener(request)

    def notify_rejection(self, request: Request) -> None:
        self.rejected += 1
        for listener in self._rejection_listeners:
            listener(request)

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def attach_functional(self, database, bodies: Dict[str, Callable],
                          config, rng: random.Random) -> None:
        """Execute real transaction bodies at dispatch time.

        The body runs against the storage engine when the request is
        dispatched; its simulated *duration* still comes from the
        request's drawn work.  TPC-C's 1% New Order rollback surfaces as
        a caught :class:`Rollback` (the transaction aborts cleanly).
        """
        def executor(request: Request):
            body = bodies.get(request.txn_type)
            if body is None:
                return None
            try:
                return body(database, rng, config, now=self.sim.now)
            except Rollback:
                return {"rolled_back": True}

        self.functional_executor = executor

    # ------------------------------------------------------------------
    # Power / state summaries
    # ------------------------------------------------------------------
    def wall_power(self) -> float:
        """Instantaneous whole-server draw (W)."""
        return self.server_power.wall_power(self.cores)

    def wall_energy(self) -> float:
        """Whole-server energy consumed so far (J)."""
        return self.server_power.wall_energy(self.cores, self.sim.now)

    def cpu_energy(self) -> float:
        """CPU-only energy (the RAPL view), in joules."""
        return sum(pkg.energy_joules(self.sim.now) for pkg in self.packages)

    def total_queue_length(self) -> int:
        return sum(w.queue_length() for w in self.workers)

    def sanitize_accounting(self) -> None:
        """simsan: conservation of requests (the faulted-regime books).

        Every submitted request is, at any instant, exactly one of:
        completed, rejected (admission control or shedding), in flight
        on a core, or queued.  Run after migrations and at end of run;
        callable directly from tests.
        """
        completed = sum(w.completed for w in self.workers)
        in_flight = sum(1 for w in self.workers if w.current is not None)
        queued = self.total_queue_length()
        invariant(self.submitted == completed + self.rejected
                  + in_flight + queued, "request-accounting",
                  "requests were lost or double-counted",
                  submitted=self.submitted, completed=completed,
                  rejected=self.rejected, in_flight=in_flight,
                  queued=queued, now=self.sim.now)

    def drain(self, timeout: float = 60.0) -> None:
        """Run the simulation until every worker is idle and every queue
        is empty (for tests).

        ``timeout`` is *virtual* (simulation) seconds, measured on
        ``sim.now`` from the call --- host wall time never enters, so a
        slow machine cannot flip a drain into a failure.  If work
        remains when the virtual deadline passes, or the event queue
        runs dry while requests are still held (a stalled core, a
        dispatcher that lost its wakeup), the failure is reported as a
        :class:`DrainTimeout` naming each undrained worker and what it
        is holding, instead of returning as if the drain succeeded.
        """
        deadline = self.sim.now + timeout
        # Sentinel no-op at the deadline: step() advances to the next
        # event, which may otherwise leap far past the deadline (and a
        # leap that happens to finish the work would turn a blown
        # timeout into silent success).
        self.sim.schedule_at(deadline, lambda: None)
        while True:
            if all(w.idle for w in self.workers) \
                    and self.total_queue_length() == 0:
                return
            if self.sim.now >= deadline:
                raise DrainTimeout(self._drain_report(
                    f"drain exceeded {timeout:g} virtual seconds"))
            if not self.sim.step():
                raise DrainTimeout(self._drain_report(
                    "event queue ran dry with work still held"))

    def _drain_report(self, reason: str) -> str:
        """One line per undrained worker: what it runs, what it queues."""
        lines = [f"{reason} (now={self.sim.now:.6f})"]
        for worker in self.workers:
            queued = worker.queue_length()
            if worker.idle and queued == 0:
                continue
            running = worker.current.txn_type if worker.current else "-"
            lines.append(
                f"  worker {worker.worker_id}: running={running} "
                f"queued={queued} stalled={worker.core.stalled}")
        return "\n".join(lines)
