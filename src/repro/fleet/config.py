"""Fleet-tier configuration (the ``fleet`` field of ExperimentConfig).

Kept import-light on purpose: :mod:`repro.harness.experiment` embeds
:class:`FleetConfig` as a nested dataclass field, so this module must
not import the harness back.  Being a plain dataclass also means
``dataclasses.asdict`` reaches every knob, which salts the sweep-cache
key automatically --- a cached single-server result can never be served
for a fleet cell or vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class FleetConfig:
    """Shape and policy of one simulated fleet.

    A fleet is ``shards`` shards, each with one primary plus
    ``replicas_per_shard`` read replicas; every node wraps its own
    :class:`~repro.db.server.DatabaseServer` with ``node_workers``
    cores, all sharing one virtual clock.  Offered load is expressed
    exactly as in single-server cells --- fractions of peak throughput
    --- but against the *peak-provisioned* fleet (every node active),
    so elastic and static cells of the same shape see identical
    arrivals.
    """

    shards: int = 2
    replicas_per_shard: int = 1
    node_workers: int = 2
    node_request_handlers: int = 1

    # -- elasticity ----------------------------------------------------
    #: Run the ElasticController (scale-out/scale-in of replicas).
    elastic: bool = True
    #: Replicas per shard the controller may never park below.
    min_active_replicas: int = 0
    #: Static cells only (``elastic=False``): how many replicas per
    #: shard start active; the rest stay parked for the whole run.
    #: ``None`` means all of them (the static peak-provisioned fleet).
    static_active_replicas: Optional[int] = None

    # -- node lifecycle ------------------------------------------------
    #: Boot latency drawn uniformly from [min, max] per unpark (seeded).
    boot_latency_min_s: float = 1.5
    boot_latency_max_s: float = 4.0
    #: Grace between entering draining and the first park attempt.
    drain_grace_s: float = 0.5
    #: Poll cadence while waiting for a draining node's in-flight work.
    drain_poll_s: float = 0.05
    #: Wall draw of a parked node (fans + BMC; the idle-parked floor).
    parked_floor_watts: float = 4.0

    # -- replication / routing -----------------------------------------
    #: Per-replica apply lag drawn uniformly from [min, max] at build
    #: time (seeded): a read hitting a replica within its lag of the
    #: shard's last write is stale and bounces to the primary.
    replication_lag_min_s: float = 0.01
    replication_lag_max_s: float = 0.08
    #: Keys are drawn uniformly from [0, keyspace) and sharded modulo.
    keyspace: int = 4096

    # -- failure model / failover (chaos cells) ------------------------
    #: Run the heartbeat detector + primary-failover machinery when the
    #: fault plan crashes nodes.  Off = the no-failover baseline: a
    #: crashed primary's shard sheds writes for the rest of the run.
    failover_enabled: bool = True
    #: Heartbeat cadence on the virtual clock; a crash is detected on
    #: the first tick at least ``heartbeat_timeout_s`` after it.
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 0.2
    #: Promotion replays the caught-up durable WAL prefix on the new
    #: primary: a fixed mount/analysis cost plus a per-record redo cost.
    replay_fixed_s: float = 0.05
    replay_per_record_s: float = 0.0002
    #: Commits per group-commit force on each shard's primary WAL ---
    #: the durability window a crash can lose (Shore-MT's default is
    #: 100; fleet chaos cells default lower so the acceptance runs
    #: exercise real loss without needing thousands of writes).
    group_commit_size: int = 8

    # -- self-healing router (armed only under a chaos plan) -----------
    #: Consecutive routing failures that trip a node's breaker open.
    breaker_failure_threshold: int = 3
    #: Open -> half-open probe delay on the virtual clock.
    breaker_reset_s: float = 0.5
    #: Bounded retry-with-backoff when a shard has no active target:
    #: retry ``k`` re-routes ``route_retry_backoff_s * 2**k`` later;
    #: after the last retry the request is shed.  0 disables retries
    #: (every no-active-node routing sheds immediately).
    route_retry_limit: int = 3
    route_retry_backoff_s: float = 0.05
    #: Hedge reads onto the less-loaded of the two next active replicas
    #: (power-of-two-choices stand-in for duplicate-and-race hedging).
    hedged_reads: bool = False

    # -- elastic controller --------------------------------------------
    controller_interval_s: float = 0.5
    #: Window of per-tick arrival counts the utilization signal averages.
    controller_window_ticks: int = 4
    #: Windowed utilization (arrivals / active capacity) thresholds;
    #: the gap between them plus the cooldown is the hysteresis.
    scale_out_utilization: float = 0.55
    scale_in_utilization: float = 0.20
    #: Ticks a shard stays quiet after any scale action.
    controller_cooldown_ticks: int = 3

    def validate(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.replicas_per_shard < 0:
            raise ValueError("replicas_per_shard cannot be negative")
        if self.node_workers < 1 or self.node_request_handlers < 1:
            raise ValueError("nodes need at least one worker and one RH")
        if not 0 <= self.min_active_replicas <= self.replicas_per_shard:
            raise ValueError("min_active_replicas out of range")
        if self.static_active_replicas is not None and not \
                0 <= self.static_active_replicas <= self.replicas_per_shard:
            raise ValueError("static_active_replicas out of range")
        if self.boot_latency_min_s < 0 \
                or self.boot_latency_max_s < self.boot_latency_min_s:
            raise ValueError("boot latency range is inverted")
        if self.drain_grace_s < 0 or self.drain_poll_s <= 0:
            raise ValueError("drain timings must be positive")
        if self.parked_floor_watts < 0:
            raise ValueError("parked floor cannot be negative")
        if self.replication_lag_min_s < 0 \
                or self.replication_lag_max_s < self.replication_lag_min_s:
            raise ValueError("replication lag range is inverted")
        if self.keyspace < 1:
            raise ValueError("keyspace must be positive")
        if self.controller_interval_s <= 0 \
                or self.controller_window_ticks < 1:
            raise ValueError("controller cadence must be positive")
        if not 0 <= self.scale_in_utilization < self.scale_out_utilization:
            raise ValueError("need scale_in < scale_out utilization "
                             "(the hysteresis band)")
        if self.controller_cooldown_ticks < 0:
            raise ValueError("cooldown cannot be negative")
        if self.heartbeat_interval_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat cadence must be positive")
        if self.replay_fixed_s < 0 or self.replay_per_record_s < 0:
            raise ValueError("replay costs cannot be negative")
        if self.group_commit_size < 1:
            raise ValueError("group commit size must be >= 1")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if self.breaker_reset_s <= 0:
            raise ValueError("breaker reset delay must be positive")
        if self.route_retry_limit < 0:
            raise ValueError("route retry limit cannot be negative")
        if self.route_retry_backoff_s <= 0:
            raise ValueError("route retry backoff must be positive")

    def provisioned_nodes(self) -> int:
        """Node count at peak provisioning (primaries + all replicas)."""
        return self.shards * (1 + self.replicas_per_shard)


__all__ = ["FleetConfig"]
