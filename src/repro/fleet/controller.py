"""Elastic node autoscaling: park-or-boot from windowed fleet load.

POLARIS races or paces individual cores; the :class:`ElasticController`
plays the same game one tier up, with whole nodes.  Every
``controller_interval_s`` it differentiates each shard's cumulative
arrival counter into a windowed arrival rate, normalizes by the shard's
*currently serving* capacity (active nodes x per-node peak throughput),
and compares the utilization against two thresholds:

* above ``scale_out_utilization`` --- unpark one parked replica (boot
  latency drawn from the seeded lifecycle stream; the node serves
  nothing and saves nothing until it finishes warming);
* below ``scale_in_utilization`` --- drain one active replica, reusing
  the ``repro.faults`` quarantine/migration machinery to move its
  queued requests onto shard siblings before it parks.

Hysteresis is the gap between the two thresholds plus a per-shard
cooldown after any action; at most one replica per shard is in motion
(warming or draining) at a time.  Primaries are never parked ---
a shard must always accept writes.
"""

from __future__ import annotations

import random
from typing import Deque, Dict, List, Optional

from collections import deque

from repro.faults.resilience import drain_worker_queue, redistribute_requests
from repro.fleet.config import FleetConfig
from repro.fleet.node import Fleet, Node, NodeState
from repro.fleet.router import ClusterRouter, ShardState
from repro.sim.engine import Simulator

#: Deterministic ordering of the action counters.
_ACTIONS = ("scale_out", "scale_in", "migrations", "migrated_requests")


class ElasticController:
    """Adds and parks replicas from the windowed per-shard load."""

    def __init__(self, sim: Simulator, fleet: Fleet, router: ClusterRouter,
                 config: FleetConfig, per_node_peak_tps: float,
                 lifecycle_rng: random.Random):
        self.sim = sim
        self.fleet = fleet
        self.router = router
        self.config = config
        self.per_node_peak_tps = per_node_peak_tps
        self.lifecycle_rng = lifecycle_rng
        self.actions: Dict[str, int] = {name: 0 for name in _ACTIONS}
        self._windows: List[Deque[int]] = [
            deque(maxlen=config.controller_window_ticks)
            for _ in router.shards]
        self._last_offered = [shard.offered for shard in router.shards]
        self._cooldown = [0 for _ in router.shards]
        self._tick_event = None
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("fleet", "controller")

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._tick_event = self.sim.schedule(
            self.config.controller_interval_s, self._tick)

    def stop(self) -> None:
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        for index, shard in enumerate(self.router.shards):
            self._consider(index, shard)
        self._tick_event = self.sim.schedule(
            self.config.controller_interval_s, self._tick)

    def shard_utilization(self, index: int, shard: ShardState) -> float:
        """Windowed arrival rate over currently-serving capacity."""
        window = self._windows[index]
        window_s = len(window) * self.config.controller_interval_s
        serving = len(shard.active_nodes())
        if window_s <= 0 or serving == 0:
            return 0.0
        rate_tps = sum(window) / window_s
        return rate_tps / (serving * self.per_node_peak_tps)

    def _consider(self, index: int, shard: ShardState) -> None:
        window = self._windows[index]
        window.append(shard.offered - self._last_offered[index])
        self._last_offered[index] = shard.offered
        if self._cooldown[index] > 0:
            self._cooldown[index] -= 1
            return
        if len(window) < window.maxlen:
            return  # not enough signal yet
        in_motion = any(r.state in (NodeState.WARMING, NodeState.DRAINING)
                        for r in shard.replicas)
        if in_motion:
            return  # one replica per shard in motion at a time
        utilization = self.shard_utilization(index, shard)
        if utilization > self.config.scale_out_utilization:
            self._scale_out(index, shard, utilization)
        elif utilization < self.config.scale_in_utilization:
            self._scale_in(index, shard, utilization)

    # ------------------------------------------------------------------
    def _scale_out(self, index: int, shard: ShardState,
                   utilization: float) -> None:
        parked = next((r for r in shard.replicas
                       if r.state is NodeState.PARKED), None)
        if parked is None:
            return  # peak-provisioned already
        boot_s = self.lifecycle_rng.uniform(self.config.boot_latency_min_s,
                                            self.config.boot_latency_max_s)
        parked.unpark(boot_s)
        self.actions["scale_out"] += 1
        self._cooldown[index] = self.config.controller_cooldown_ticks
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, "elastic:scale-out",
                                self.sim.now, shard=shard.shard_id,
                                node=parked.node_id, boot_s=boot_s,
                                utilization=utilization)

    def _scale_in(self, index: int, shard: ShardState,
                  utilization: float) -> None:
        active = [r for r in shard.replicas
                  if r.state is NodeState.ACTIVE]
        if len(active) <= self.config.min_active_replicas:
            return
        if shard.primary.state is not NodeState.ACTIVE and len(active) <= 1:
            # The primary is crashed (or still warming after a
            # failover boot): this replica is the shard's only serving
            # node --- and the only promotion candidate.  Parking it
            # would strand the shard, so scale-in waits until the
            # primary is healthy again.
            return
        victim = active[-1]
        victim.begin_drain(self._migrate_off, self.config.drain_grace_s,
                           self.config.drain_poll_s)
        self.actions["scale_in"] += 1
        self._cooldown[index] = self.config.controller_cooldown_ticks
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, "elastic:scale-in",
                                self.sim.now, shard=shard.shard_id,
                                node=victim.node_id,
                                utilization=utilization)

    # ------------------------------------------------------------------
    def _migrate_off(self, node: Node) -> None:
        """Drain a parking node's queues onto its shard siblings.

        Reuses the faults-tier machinery (pop via the dispatcher,
        round-robin ``receive_migrated`` so EDF queues re-sort), then
        moves each migrated request's ``submitted`` credit from the
        source server to its adoptive one --- per-node books stay
        balanced and the fleet-scope sum is untouched, which
        :meth:`Fleet.sanitize_accounting` audits after every migration
        under simsan.
        """
        requests = []
        for worker in node.server.workers:
            requests.extend(drain_worker_queue(worker))
        if not requests:
            return
        shard = self.router.shards[node.shard_id]
        targets = shard.active_nodes()
        if not targets:
            raise RuntimeError(
                f"shard {node.shard_id} has no active node to adopt "
                f"{len(requests)} migrated requests (primary state: "
                f"{shard.primary.state.value})")
        target_workers = [w for n in targets for w in n.server.workers]
        redistribute_requests(requests, target_workers)
        node.server.submitted -= len(requests)
        for offset in range(len(requests)):
            target_workers[offset % len(target_workers)] \
                .server.submitted += 1
        self.actions["migrations"] += 1
        self.actions["migrated_requests"] += len(requests)
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, "elastic:migration",
                                self.sim.now, source=node.node_id,
                                moved=len(requests),
                                targets=len(target_workers))
        if self.sim.sanitize:
            self.fleet.sanitize_accounting()


__all__ = ["ElasticController"]
