"""Fleet nodes: a DatabaseServer with a role, a lifecycle, and a plug.

The PolarDB storage/compute-separation material grounds the model:
compute nodes are stateless, so whole nodes can be added or parked
independently of the data they serve.  Each :class:`Node` wraps one
:class:`~repro.db.server.DatabaseServer` (all nodes share one virtual
clock) and carries

* a **role** --- the primary of its shard, or a read replica;
* a **lifecycle** --- ``warming -> active -> draining -> parked`` with
  seeded boot latencies and a drain grace period; and
* **node-scope power** --- while powered the node draws its server's
  wall power (static floor + cores); while parked it draws only an
  idle-parked floor (fans + BMC), the power the elastic controller is
  racing to reclaim.

:class:`Fleet` aggregates the nodes: fleet-wide power/energy for the
meter, the active-node timeline for the figure, and the fleet-scope
request-conservation invariant for simsan.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.analysis.sanitizer import invariant
from repro.db.server import DatabaseServer
from repro.faults.resilience import drain_worker_queue
from repro.sim.engine import Simulator

#: Node roles.
PRIMARY = "primary"
REPLICA = "replica"


class NodeState(enum.Enum):
    """Lifecycle states; only these transitions occur:

    ``parked -> warming`` (unpark; boot latency runs),
    ``warming -> active`` (boot complete),
    ``active -> draining`` (controller parks a replica; queues migrate),
    ``draining -> parked`` (in-flight work finished, grace elapsed),
    ``any powered state -> crashed`` (fail-stop; terminal --- recovery
    is failover to a sibling, never reboot of the corpse).
    """

    WARMING = "warming"
    ACTIVE = "active"
    DRAINING = "draining"
    PARKED = "parked"
    CRASHED = "crashed"


class Node:
    """One compute node of the fleet."""

    def __init__(self, sim: Simulator, node_id: int, shard_id: int,
                 role: str, server: DatabaseServer,
                 parked_floor_watts: float,
                 replication_lag_s: float = 0.0,
                 start_parked: bool = False,
                 on_transition: Optional[Callable] = None):
        if role not in (PRIMARY, REPLICA):
            raise ValueError(f"unknown node role {role!r}")
        if role == PRIMARY and start_parked:
            raise ValueError("a shard's primary cannot start parked")
        self.sim = sim
        self.node_id = node_id
        self.shard_id = shard_id
        self.role = role
        self.server = server
        self.parked_floor_watts = parked_floor_watts
        #: Apply lag of this replica (0.0 for primaries): a read landing
        #: within this of the shard's last write would observe a stale
        #: snapshot.
        self.replication_lag_s = replication_lag_s
        self.state = NodeState.PARKED if start_parked else NodeState.ACTIVE
        self._on_transition = on_transition
        #: Energy (J) of completed lifecycle segments; the open segment
        #: is integrated on demand by :meth:`energy_joules_at`.
        self._segment_energy_j = 0.0
        self._segment_start_s = sim.now
        #: Server cumulative energy at the start of the open powered
        #: segment (meaningless while parked).
        self._server_energy_base_j = 0.0 if start_parked \
            else server.wall_energy()
        self.boots = 0
        self.drains = 0
        #: Fail-stop bookkeeping (chaos cells): requests that died on
        #: this node when it crashed, and the crash instant (None while
        #: healthy) the heartbeat detector measures its timeout from.
        self.lost_on_crash = 0
        self.crashed_at_s: Optional[float] = None
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("fleet", f"node-{node_id}")

    def __repr__(self) -> str:
        return (f"Node({self.node_id}, shard={self.shard_id}, "
                f"{self.role}, {self.state.value})")

    # ------------------------------------------------------------------
    # Power / energy (node scope: parked nodes draw the floor only)
    # ------------------------------------------------------------------
    def power_watts(self) -> float:
        """Instantaneous node draw (W)."""
        if self.state is NodeState.PARKED:
            return self.parked_floor_watts
        if self.state is NodeState.CRASHED:
            return 0.0  # fail-stop: the PSU is as dead as the node
        return self.server.wall_power()

    def energy_joules_at(self, now_s: float) -> float:
        """Node energy consumed up to ``now_s`` (J)."""
        if self.state is NodeState.PARKED:
            open_j = self.parked_floor_watts * (now_s - self._segment_start_s)
        elif self.state is NodeState.CRASHED:
            open_j = 0.0
        else:
            open_j = self.server.wall_energy() - self._server_energy_base_j
        return self._segment_energy_j + open_j

    def _transition(self, new_state: NodeState) -> None:
        now_s = self.sim.now
        # Close the open energy segment under the *old* state's rule.
        if self.state is NodeState.PARKED:
            self._segment_energy_j += \
                self.parked_floor_watts * (now_s - self._segment_start_s)
        elif self.state is NodeState.CRASHED:
            pass  # a crashed segment integrates to zero
        else:
            self._segment_energy_j += \
                self.server.wall_energy() - self._server_energy_base_j
        # Rebase on every transition: the next powered segment counts
        # server energy from here (integrated energy accrued while
        # parked belongs to nobody --- the floor term covers it).
        self._server_energy_base_j = self.server.wall_energy()
        self._segment_start_s = now_s
        old_state, self.state = self.state, new_state
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track,
                                f"node:{new_state.value}", now_s,
                                shard=self.shard_id, role=self.role,
                                was=old_state.value)
        if self._on_transition is not None:
            self._on_transition(self, old_state, new_state)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def unpark(self, boot_latency_s: float,
               on_active: Optional[Callable] = None) -> None:
        """``parked -> warming``; after ``boot_latency_s`` the node goes
        active (drawing powered-but-idle watts the whole way --- boot
        is paid for before it serves anything)."""
        if self.state is not NodeState.PARKED:
            raise RuntimeError(f"cannot unpark {self!r}")
        self._transition(NodeState.WARMING)
        self.boots += 1

        def boot_complete() -> None:
            self._transition(NodeState.ACTIVE)
            if on_active is not None:
                on_active(self)

        self.sim.schedule(boot_latency_s, boot_complete)

    def begin_drain(self, migrate_fn: Callable, grace_s: float,
                    poll_s: float) -> None:
        """``active -> draining``: the router stops targeting this node
        immediately, ``migrate_fn(node)`` moves its queued requests to
        shard siblings, in-flight transactions finish in place, and the
        node parks once idle (first checked after ``grace_s``, then
        every ``poll_s``)."""
        if self.state is not NodeState.ACTIVE:
            raise RuntimeError(f"cannot drain {self!r}")
        if self.role == PRIMARY:
            raise RuntimeError("a shard's primary is never drained")
        self._transition(NodeState.DRAINING)
        self.drains += 1
        migrate_fn(self)
        self.sim.schedule(grace_s, lambda: self._try_park(poll_s))

    def _try_park(self, poll_s: float) -> None:
        if self.state is not NodeState.DRAINING:
            return
        busy = any(w.current is not None for w in self.server.workers) \
            or self.server.total_queue_length() > 0
        if busy:
            self.sim.schedule(poll_s, lambda: self._try_park(poll_s))
            return
        self._transition(NodeState.PARKED)

    def promote(self) -> None:
        """Replica -> primary (failover): the promoted node accepts the
        shard's writes and serves reads with zero apply lag from here
        on.  Only an active node can be promoted."""
        if self.state is not NodeState.ACTIVE:
            raise RuntimeError(f"cannot promote {self!r}")
        self.role = PRIMARY
        self.replication_lag_s = 0.0

    def crash(self) -> List:
        """Fail-stop: the node dies mid-instruction, returning the
        requests that died with it (queued plus in-flight).

        Every core stalls (banking nothing useful: the completion event
        is cancelled and never rescheduled), the queues are emptied, and
        --- like queue migration --- each dead request's ``submitted``
        credit leaves the server with it, so per-node and fleet books
        stay balanced; the caller accounts the corpses as losses.
        Idempotent: crashing a crashed node is a no-op.
        """
        if self.state is NodeState.CRASHED:
            return []
        lost: List = []
        for worker in self.server.workers:
            lost.extend(drain_worker_queue(worker))
            if worker.current is not None:
                lost.append(worker.current)
                worker.current = None
            worker.core.stall()
        self.server.submitted -= len(lost)
        self.lost_on_crash += len(lost)
        self.crashed_at_s = self.sim.now
        self._transition(NodeState.CRASHED)
        return lost


class Fleet:
    """All nodes of one fleet experiment, on one virtual clock."""

    def __init__(self, sim: Simulator, nodes: List[Node]):
        self.sim = sim
        self.nodes = nodes
        #: (time_s, active node count), appended on every transition
        #: that changes the count (plus the initial sample at build).
        self.node_timeline: List[tuple] = [(sim.now, self.active_count())]
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("fleet", "nodes")
        for node in nodes:
            node._on_transition = self._note_transition

    def active_count(self) -> int:
        return sum(1 for n in self.nodes if n.state is NodeState.ACTIVE)

    def powered_count(self) -> int:
        return sum(1 for n in self.nodes
                   if n.state is not NodeState.PARKED)

    def shard_nodes(self, shard_id: int) -> List[Node]:
        return [n for n in self.nodes if n.shard_id == shard_id]

    def _note_transition(self, node: Node, old_state: NodeState,
                         new_state: NodeState) -> None:
        count = self.active_count()
        if not self.node_timeline or self.node_timeline[-1][1] != count:
            self.node_timeline.append((self.sim.now, count))
        if self.tracer.enabled:
            self.tracer.counter(self.trace_track, "active_nodes",
                                self.sim.now, active=count,
                                powered=self.powered_count())

    # ------------------------------------------------------------------
    # Fleet-scope power/energy (what the wall meter sees)
    # ------------------------------------------------------------------
    def wall_power(self) -> float:
        return sum(n.power_watts() for n in self.nodes)

    def wall_energy(self) -> float:
        now_s = self.sim.now
        return sum(n.energy_joules_at(now_s) for n in self.nodes)

    def cpu_energy(self) -> float:
        """Sum of the nodes' RAPL views (powered-state diagnostics)."""
        return sum(n.server.cpu_energy() for n in self.nodes)

    def total_queue_length(self) -> int:
        return sum(n.server.total_queue_length() for n in self.nodes)

    def all_idle(self) -> bool:
        return all(w.idle for n in self.nodes for w in n.server.workers) \
            and self.total_queue_length() == 0

    # ------------------------------------------------------------------
    # simsan: conservation of requests at fleet scope
    # ------------------------------------------------------------------
    def sanitize_accounting(self) -> None:
        """Every request submitted anywhere in the fleet is, at any
        instant, exactly one of: completed, rejected, in flight, or
        queued --- summed across nodes, so cross-node queue migration
        (which moves both the request and its ``submitted`` credit)
        can neither lose nor double-count.  A crash moves the dead
        requests' credit out the same way (``Node.crash`` returns the
        corpses for the experiment to count as losses), so the books
        balance through fail-stops too.  Per-node books are audited
        as well, since migration keeps them individually balanced."""
        submitted = sum(n.server.submitted for n in self.nodes)
        completed = sum(w.completed for n in self.nodes
                        for w in n.server.workers)
        rejected = sum(n.server.rejected for n in self.nodes)
        in_flight = sum(1 for n in self.nodes for w in n.server.workers
                        if w.current is not None)
        queued = self.total_queue_length()
        invariant(submitted == completed + rejected + in_flight + queued,
                  "fleet-accounting",
                  "requests were lost or double-counted across nodes",
                  submitted=submitted, completed=completed,
                  rejected=rejected, in_flight=in_flight, queued=queued,
                  now=self.sim.now)
        for node in self.nodes:
            node.server.sanitize_accounting()


__all__ = ["Fleet", "Node", "NodeState", "PRIMARY", "REPLICA"]
