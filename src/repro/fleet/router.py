"""Cluster routing: shard by key, reads to replicas, writes to primaries.

The router is the fleet's request-handler tier.  Each request carries a
key drawn from the configured keyspace; ``key % shards`` picks the
shard.  Writes always execute on the shard's primary (and advance the
shard's last-write clock).  Reads round-robin over the shard's *active*
replicas --- but a replica only serves a read if its seeded replication
lag has passed since the shard's last write; otherwise the read would
observe a stale snapshot and is **bounced to the primary**.  Those
bounces are the fleet tier's new latency hazard class: they are counted
(:attr:`ClusterRouter.stale_read_bounces`, surfaced on the experiment
result), traced as ``router:stale-read`` instants, and they concentrate
read load on the primary exactly when it is busiest (just after
writes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.core.request import Request
from repro.fleet.node import Node, NodeState
from repro.sim.engine import Simulator

#: Read-only transaction types per benchmark family; everything else
#: mutates and must execute on the primary.  (TPC-C: Section 2.2 of the
#: spec; TPC-E: the read-only customer/market transactions; YCSB: reads
#: and scans.)
_READ_ONLY_TYPES: Dict[str, FrozenSet[str]] = {
    "tpcc": frozenset({"OrderStatus", "StockLevel"}),
    "tpce": frozenset({"TradeStatus", "MarketWatch", "SecurityDetail",
                       "CustomerPosition", "TradeLookup", "BrokerVolume"}),
    "ycsb": frozenset({"Read", "Scan"}),
}


def read_only_types(benchmark: str) -> FrozenSet[str]:
    """The benchmark's read-only transaction-type names."""
    family = "ycsb" if benchmark.startswith("ycsb") else benchmark
    try:
        return _READ_ONLY_TYPES[family]
    except KeyError:
        raise ValueError(f"no read/write split known for {benchmark!r}")


class ShardState:
    """One shard's routing state: its nodes and replication clock."""

    def __init__(self, shard_id: int, primary: Node,
                 replicas: List[Node]):
        self.shard_id = shard_id
        self.primary = primary
        self.replicas = replicas
        #: Virtual time of the last write routed to this shard; replicas
        #: within their lag of it are stale for reads.
        self.last_write_s = float("-inf")
        self._rr_index = 0
        #: Cumulative arrivals routed to this shard (reads + writes);
        #: the elastic controller differentiates this for its windowed
        #: load signal.
        self.offered = 0
        self.stale_read_bounces = 0

    def active_nodes(self) -> List[Node]:
        nodes = [self.primary] if self.primary.state is NodeState.ACTIVE \
            else []
        nodes.extend(r for r in self.replicas
                     if r.state is NodeState.ACTIVE)
        return nodes

    def next_active_replica(self) -> Optional[Node]:
        """Round-robin over replicas currently active (None if none)."""
        count = len(self.replicas)
        for offset in range(count):
            node = self.replicas[(self._rr_index + offset) % count]
            if node.state is NodeState.ACTIVE:
                self._rr_index = (self._rr_index + offset + 1) % count
                return node
        return None


class ClusterRouter:
    """Routes client requests onto fleet nodes."""

    def __init__(self, sim: Simulator, shards: List[ShardState],
                 read_types: FrozenSet[str]):
        if not shards:
            raise ValueError("need at least one shard")
        self.sim = sim
        self.shards = shards
        self.read_types = read_types
        self.routed_writes = 0
        self.routed_reads = 0
        #: Reads served by a replica (fresh) vs bounced/fallback.
        self.replica_reads = 0
        self.stale_read_bounces = 0
        #: Reads sent to the primary because no replica was active.
        self.replica_fallbacks = 0
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("fleet", "router")

    def route(self, request: Request, key: int) -> Node:
        """Pick the serving node for ``request`` and submit it."""
        shard = self.shards[key % len(self.shards)]
        shard.offered += 1
        now_s = self.sim.now
        if request.txn_type in self.read_types:
            self.routed_reads += 1
            replica = shard.next_active_replica()
            if replica is None:
                self.replica_fallbacks += 1
                target = shard.primary
            elif now_s - shard.last_write_s < replica.replication_lag_s:
                # The replica has not applied the shard's latest write:
                # serving the read there would return stale data, so it
                # bounces to the primary --- the fleet tier's new
                # latency hazard class.
                self.stale_read_bounces += 1
                shard.stale_read_bounces += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        self.trace_track, "router:stale-read", now_s,
                        shard=shard.shard_id, replica=replica.node_id,
                        lag_s=replica.replication_lag_s,
                        since_write_s=now_s - shard.last_write_s)
                target = shard.primary
            else:
                self.replica_reads += 1
                target = replica
        else:
            self.routed_writes += 1
            shard.last_write_s = now_s
            target = shard.primary
        if self.tracer.enabled:
            self.tracer.counter(self.trace_track,
                                f"shard_offered.s{shard.shard_id}",
                                now_s, offered=shard.offered)
        target.server.submit(request)
        return target

    def decision_counts(self) -> Dict[str, int]:
        """Deterministically ordered router decision counters."""
        return {
            "routed_writes": self.routed_writes,
            "routed_reads": self.routed_reads,
            "replica_reads": self.replica_reads,
            "stale_read_bounces": self.stale_read_bounces,
            "replica_fallbacks": self.replica_fallbacks,
        }


__all__ = ["ClusterRouter", "ShardState", "read_only_types"]
