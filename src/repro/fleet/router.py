"""Cluster routing: shard by key, reads to replicas, writes to primaries.

The router is the fleet's request-handler tier.  Each request carries a
key drawn from the configured keyspace; ``key % shards`` picks the
shard.  Writes always execute on the shard's primary (and advance the
shard's last-write clock).  Reads round-robin over the shard's *active*
replicas --- but a replica only serves a read if its replication lag
has passed since the shard's last write; otherwise the read would
observe a stale snapshot and is **bounced to the primary**.  Those
bounces are the fleet tier's new latency hazard class: they are counted
(:attr:`ClusterRouter.stale_read_bounces`, surfaced on the experiment
result), traced as ``router:stale-read`` instants, and they concentrate
read load on the primary exactly when it is busiest (just after
writes).

Failure semantics (PR 9): when every node that could serve a request is
parked, draining, warming, or crashed, :meth:`ClusterRouter.route`
raises the typed :class:`NoActiveNodeError` and the experiment sheds
the request.  Under a chaos plan the router is additionally **armed**
with a :class:`RouterPolicy` (:meth:`ClusterRouter.arm_self_healing`)
and becomes self-healing:

* a per-node **circuit breaker** (closed -> open after
  ``breaker_failure_threshold`` consecutive failures -> half-open probe
  after ``breaker_reset_s``) keeps read routing off nodes that recently
  failed to serve;
* a **bounded retry-with-backoff**: instead of shedding immediately, a
  request with no active target is re-routed ``retry_backoff_s * 2**k``
  later, up to ``retry_limit`` times --- failover usually lands inside
  that envelope, so retried requests survive the unavailability window;
* optional **hedged reads**: the read targets the less-loaded of the
  next two active replicas (the power-of-two-choices stand-in for
  duplicate-and-race hedging).

None of the self-healing machinery touches an unarmed router: healthy
cells stay byte-identical to the PR 8 pins, and
:meth:`decision_counts` only grows its chaos counters when armed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.request import Request
from repro.fleet.node import Node, NodeState
from repro.sim.engine import Simulator

#: Read-only transaction types per benchmark family; everything else
#: mutates and must execute on the primary.  (TPC-C: Section 2.2 of the
#: spec; TPC-E: the read-only customer/market transactions; YCSB: reads
#: and scans.)
_READ_ONLY_TYPES: Dict[str, FrozenSet[str]] = {
    "tpcc": frozenset({"OrderStatus", "StockLevel"}),
    "tpce": frozenset({"TradeStatus", "MarketWatch", "SecurityDetail",
                       "CustomerPosition", "TradeLookup", "BrokerVolume"}),
    "ycsb": frozenset({"Read", "Scan"}),
}


def read_only_types(benchmark: str) -> FrozenSet[str]:
    """The benchmark's read-only transaction-type names."""
    family = "ycsb" if benchmark.startswith("ycsb") else benchmark
    try:
        return _READ_ONLY_TYPES[family]
    except KeyError:
        raise ValueError(f"no read/write split known for {benchmark!r}")


class NoActiveNodeError(RuntimeError):
    """A shard has no node able to serve a routed request.

    Raised by :meth:`ClusterRouter.route` when the write primary is not
    active (crashed, or mid-transition) and, for reads, no active
    replica can stand in either.  The experiment catches it and sheds
    the request --- offered-and-rejected, never silently dropped.
    """

    def __init__(self, shard_id: int, kind: str):
        super().__init__(f"shard {shard_id} has no active node to "
                         f"serve a {kind}")
        self.shard_id = shard_id
        self.kind = kind


@dataclass(frozen=True)
class RouterPolicy:
    """Self-healing knobs, armed on the router only under chaos plans."""

    breaker_failure_threshold: int = 3
    breaker_reset_s: float = 0.5
    retry_limit: int = 3
    retry_backoff_s: float = 0.05
    hedged_reads: bool = False

    @classmethod
    def from_config(cls, config) -> "RouterPolicy":
        """Lift the routing knobs off a FleetConfig."""
        return cls(
            breaker_failure_threshold=config.breaker_failure_threshold,
            breaker_reset_s=config.breaker_reset_s,
            retry_limit=config.route_retry_limit,
            retry_backoff_s=config.route_retry_backoff_s,
            hedged_reads=config.hedged_reads)


#: Circuit-breaker states (DESIGN.md "Fleet failure model" has the
#: transition diagram).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-node routing breaker on the virtual clock.

    Closed counts consecutive failures; at the threshold it opens and
    the router stops considering the node for reads.  After
    ``reset_s`` the next :meth:`allows` check moves it to half-open ---
    one probe may route; a success closes it, a failure re-opens it
    (and restarts the reset clock).
    """

    __slots__ = ("threshold", "reset_s", "state", "failures",
                 "opened_at_s")

    def __init__(self, threshold: int, reset_s: float):
        self.threshold = threshold
        self.reset_s = reset_s
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.opened_at_s = 0.0

    def allows(self, now_s: float) -> bool:
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now_s - self.opened_at_s >= self.reset_s:
                self.state = BREAKER_HALF_OPEN
                return True  # the probe
            return False
        return True  # half-open: probing

    def record_failure(self, now_s: float) -> bool:
        """Count a failure; True when this one tripped the breaker."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_OPEN
            self.opened_at_s = now_s
            self.failures = 0
            return True
        self.failures += 1
        if self.state == BREAKER_CLOSED and self.failures >= self.threshold:
            self.state = BREAKER_OPEN
            self.opened_at_s = now_s
            self.failures = 0
            return True
        return False

    def record_success(self) -> None:
        self.state = BREAKER_CLOSED
        self.failures = 0


class ShardState:
    """One shard's routing state: its nodes and replication clock."""

    def __init__(self, shard_id: int, primary: Node,
                 replicas: List[Node]):
        self.shard_id = shard_id
        self.primary = primary
        self.replicas = replicas
        #: Virtual time of the last write routed to this shard; replicas
        #: within their lag of it are stale for reads.
        self.last_write_s = float("-inf")
        self._rr_index = 0
        #: Cumulative arrivals routed to this shard (reads + writes);
        #: the elastic controller differentiates this for its windowed
        #: load signal.
        self.offered = 0
        self.stale_read_bounces = 0

    def active_nodes(self) -> List[Node]:
        nodes = [self.primary] if self.primary.state is NodeState.ACTIVE \
            else []
        nodes.extend(r for r in self.replicas
                     if r.state is NodeState.ACTIVE)
        return nodes

    def next_active_replica(self) -> Optional[Node]:
        """Round-robin over replicas currently active (None if none)."""
        count = len(self.replicas)
        for offset in range(count):
            node = self.replicas[(self._rr_index + offset) % count]
            if node.state is NodeState.ACTIVE:
                self._rr_index = (self._rr_index + offset + 1) % count
                return node
        return None


class ClusterRouter:
    """Routes client requests onto fleet nodes."""

    def __init__(self, sim: Simulator, shards: List[ShardState],
                 read_types: FrozenSet[str]):
        if not shards:
            raise ValueError("need at least one shard")
        self.sim = sim
        self.shards = shards
        self.read_types = read_types
        self.routed_writes = 0
        self.routed_reads = 0
        #: Reads served by a replica (fresh) vs bounced/fallback.
        self.replica_reads = 0
        self.stale_read_bounces = 0
        #: Reads sent to the primary because no replica was active.
        self.replica_fallbacks = 0
        #: Self-healing machinery; inert (None) until a chaos plan arms
        #: it, so healthy cells stay byte-identical to the PR 8 pins.
        self.policy: Optional[RouterPolicy] = None
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._on_shed: Optional[Callable[[Request, int], None]] = None
        self._lag_fn: Optional[Callable[[Node, float], float]] = None
        self.breaker_trips = 0
        self.breaker_skips = 0
        self.hedged_read_switches = 0
        self.retries = 0
        self.shed_no_active = 0
        #: Degraded reads: served on a stale replica because the
        #: primary could not take the bounce (failover in progress).
        self.stale_reads_served = 0
        #: Requests waiting on a scheduled retry (armed routers only);
        #: :meth:`flush_pending_retries` sheds any left at end of run.
        self._in_retry: List[Tuple[Request, ShardState]] = []
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("fleet", "router")

    # ------------------------------------------------------------------
    # Self-healing arming (chaos cells only)
    # ------------------------------------------------------------------
    def arm_self_healing(self, policy: RouterPolicy,
                         on_shed: Callable[[Request, int], None],
                         lag_fn: Optional[Callable[[Node, float],
                                                   float]] = None) -> None:
        """Arm breakers/retry/hedging.  ``on_shed(request, shard_id)``
        absorbs requests that exhaust their retries (the experiment
        counts them offered-and-rejected); ``lag_fn(replica, now_s)``
        overrides the staleness lag (the chaos injector's partition and
        slow-follower windows feed through it)."""
        self.policy = policy
        self._on_shed = on_shed
        self._lag_fn = lag_fn
        self._breakers = {
            node.node_id: CircuitBreaker(policy.breaker_failure_threshold,
                                         policy.breaker_reset_s)
            for shard in self.shards
            for node in [shard.primary] + shard.replicas}

    def breaker_state(self, node_id: int) -> str:
        """The node's breaker state (unarmed routers are all closed)."""
        breaker = self._breakers.get(node_id)
        return BREAKER_CLOSED if breaker is None else breaker.state

    def _breaker_allows(self, node: Node, now_s: float) -> bool:
        if self.policy is None:
            return True
        return self._breakers[node.node_id].allows(now_s)

    def _note_failure(self, node: Node, now_s: float) -> None:
        if self.policy is None:
            return
        if self._breakers[node.node_id].record_failure(now_s):
            self.breaker_trips += 1
            if self.tracer.enabled:
                self.tracer.instant(self.trace_track,
                                    "router:breaker-open", now_s,
                                    node=node.node_id,
                                    shard=node.shard_id)

    def _note_success(self, node: Node) -> None:
        if self.policy is not None:
            self._breakers[node.node_id].record_success()

    def _replica_lag_s(self, replica: Node, now_s: float) -> float:
        if self._lag_fn is not None:
            return self._lag_fn(replica, now_s)
        return replica.replication_lag_s

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, request: Request, key: int) -> Optional[Node]:
        """Pick the serving node for ``request`` and submit it.

        Returns the node, or ``None`` when an armed router deferred the
        request to a scheduled retry (or shed it through ``on_shed``).
        Unarmed, a shard with no active target raises
        :class:`NoActiveNodeError` instead.
        """
        shard = self.shards[key % len(self.shards)]
        shard.offered += 1
        return self._route_attempt(request, shard, 0)

    def _route_attempt(self, request: Request, shard: ShardState,
                       attempt: int) -> Optional[Node]:
        now_s = self.sim.now
        is_read = request.txn_type in self.read_types
        if attempt == 0:
            if is_read:
                self.routed_reads += 1
            else:
                self.routed_writes += 1
        else:
            self._in_retry.remove((request, shard))
        try:
            if is_read:
                target = self._pick_read_target(shard, now_s)
            else:
                target = self._pick_write_target(shard, now_s)
        except NoActiveNodeError:
            policy = self.policy
            if policy is None:
                raise
            if attempt < policy.retry_limit:
                self.retries += 1
                delay_s = policy.retry_backoff_s * (2 ** attempt)
                self._in_retry.append((request, shard))
                self.sim.schedule(delay_s, partial(self._route_attempt,
                                                   request, shard,
                                                   attempt + 1))
                if self.tracer.enabled:
                    self.tracer.instant(self.trace_track, "router:retry",
                                        now_s, shard=shard.shard_id,
                                        attempt=attempt + 1,
                                        backoff_s=delay_s)
                return None
            self.shed_no_active += 1
            if self.tracer.enabled:
                self.tracer.instant(self.trace_track, "router:shed",
                                    now_s, shard=shard.shard_id,
                                    attempts=attempt + 1)
            assert self._on_shed is not None
            self._on_shed(request, shard.shard_id)
            return None
        if not is_read:
            shard.last_write_s = now_s
        if self.tracer.enabled:
            self.tracer.counter(self.trace_track,
                                f"shard_offered.s{shard.shard_id}",
                                now_s, offered=shard.offered)
        self._note_success(target)
        target.server.submit(request)
        return target

    def _pick_write_target(self, shard: ShardState, now_s: float) -> Node:
        # Writes have exactly one home; breakers never veto an active
        # primary (they gate read targeting, where siblings exist).
        primary = shard.primary
        if primary.state is NodeState.ACTIVE:
            return primary
        self._note_failure(primary, now_s)
        raise NoActiveNodeError(shard.shard_id, "write")

    def _pick_read_target(self, shard: ShardState, now_s: float) -> Node:
        replica = self._pick_replica(shard, now_s)
        if replica is None:
            if self._usable_for_read(shard.primary, now_s):
                self.replica_fallbacks += 1
                return shard.primary
            self._note_failure(shard.primary, now_s)
            raise NoActiveNodeError(shard.shard_id, "read")
        if now_s - shard.last_write_s < self._replica_lag_s(replica, now_s):
            # The replica has not applied the shard's latest write:
            # serving the read there would return stale data, so it
            # bounces to the primary --- the fleet tier's new latency
            # hazard class.
            if self._usable_for_read(shard.primary, now_s):
                self.stale_read_bounces += 1
                shard.stale_read_bounces += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        self.trace_track, "router:stale-read", now_s,
                        shard=shard.shard_id, replica=replica.node_id,
                        lag_s=replica.replication_lag_s,
                        since_write_s=now_s - shard.last_write_s)
                return shard.primary
            # Primary down (failover in progress): a stale answer beats
            # no answer --- serve the read degraded on the replica
            # (counted apart from the fresh replica_reads).
            self.stale_reads_served += 1
            if self.tracer.enabled:
                self.tracer.instant(self.trace_track,
                                    "router:stale-served", now_s,
                                    shard=shard.shard_id,
                                    replica=replica.node_id)
            self._note_failure(shard.primary, now_s)
            return replica
        self.replica_reads += 1
        return replica

    def _usable_for_read(self, node: Node, now_s: float) -> bool:
        if node.state is not NodeState.ACTIVE:
            return False
        if not self._breaker_allows(node, now_s):
            self.breaker_skips += 1
            return False
        return True

    def _pick_replica(self, shard: ShardState,
                      now_s: float) -> Optional[Node]:
        replica: Optional[Node] = None
        for _ in range(len(shard.replicas)):
            candidate = shard.next_active_replica()
            if candidate is None:
                return None
            if self._breaker_allows(candidate, now_s):
                replica = candidate
                break
            self.breaker_skips += 1
        if replica is None:
            return None
        if self.policy is not None and self.policy.hedged_reads:
            # Power-of-two-choices hedge: also look at the next active
            # replica and take the shorter queue (ties keep the
            # round-robin pick, so healthy symmetric fleets degrade to
            # plain RR).
            alternate = shard.next_active_replica()
            if alternate is not None and alternate is not replica \
                    and alternate.server.total_queue_length() \
                    < replica.server.total_queue_length():
                self.hedged_read_switches += 1
                replica = alternate
        return replica

    def flush_pending_retries(self) -> int:
        """End of run: requests still waiting on a scheduled retry will
        never re-route --- shed them so the books close (offered and
        rejected, never silently censored)."""
        flushed, self._in_retry = self._in_retry, []
        for request, shard in flushed:
            self.shed_no_active += 1
            assert self._on_shed is not None
            self._on_shed(request, shard.shard_id)
        return len(flushed)

    def decision_counts(self) -> Dict[str, int]:
        """Deterministically ordered router decision counters.

        The five PR 8 counters always; the self-healing counters only
        on an armed router, so healthy fleet fingerprints are unchanged
        by this PR.
        """
        counts = {
            "routed_writes": self.routed_writes,
            "routed_reads": self.routed_reads,
            "replica_reads": self.replica_reads,
            "stale_read_bounces": self.stale_read_bounces,
            "replica_fallbacks": self.replica_fallbacks,
        }
        if self.policy is not None:
            counts["breaker_trips"] = self.breaker_trips
            counts["breaker_skips"] = self.breaker_skips
            counts["hedged_reads"] = self.hedged_read_switches
            counts["retries"] = self.retries
            counts["shed_no_active"] = self.shed_no_active
            counts["stale_reads_served"] = self.stale_reads_served
        return counts


__all__ = ["BREAKER_CLOSED", "BREAKER_HALF_OPEN", "BREAKER_OPEN",
           "CircuitBreaker", "ClusterRouter", "NoActiveNodeError",
           "RouterPolicy", "ShardState", "read_only_types"]
