"""Run one fleet-tier experimental cell.

Single-server cells (:func:`repro.harness.experiment.run_experiment`)
measure one multi-core server under POLARIS; a fleet cell measures a
whole sharded/replicated cluster of such servers behind a
:class:`~repro.fleet.router.ClusterRouter`, with (optionally) the
:class:`~repro.fleet.controller.ElasticController` parking and booting
replicas as the offered load breathes.  The methodology mirrors the
paper's three phases --- warmup, estimator training (shared fleet-wide:
every worker of every node uses the same calibrated estimator),
measured test window with a wall meter over the *fleet's* power ---
and the result is reported through the same
:class:`~repro.harness.experiment.ExperimentResult`, with fleet extras
(per-shard miss rates, stale-read bounces, node-lifecycle actions, the
active-node timeline) on defaulted fields.

Offered load is expressed against the **peak-provisioned** fleet
(every node active), so elastic and static cells of the same shape see
bit-identical arrival sequences --- the comparison the acceptance test
pins: elastic power strictly below static-peak power at equal-or-better
per-shard deadline-miss rates.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.request import Request
from repro.core.workload import WorkloadManager
from repro.cpu.topology import SocketTopology, make_topology
from repro.db.server import DatabaseServer, ServerConfig
from repro.faults.plan import resolve_fault_plan
from repro.fleet.chaos import FleetFaultInjector, ShardReplication
from repro.fleet.config import FleetConfig
from repro.fleet.controller import ElasticController
from repro.fleet.failover import AvailabilityTracker, FailoverManager
from repro.fleet.node import Fleet, Node, NodeState, PRIMARY, REPLICA
from repro.fleet.router import (
    ClusterRouter, RouterPolicy, ShardState, read_only_types,
)
from repro.governors.base import GovernorSet
from repro.harness.experiment import (
    BENCHMARKS, ExperimentConfig, ExperimentResult, _train_estimator,
    effective_load_fraction,
)
from repro.harness.profiling import perf_clock
from repro.harness.schemes import scheme_named
from repro.metrics.latency import LatencyRecorder, WorkloadStats, percentile
from repro.metrics.power import PowerMeter
from repro.obs.export import export_chrome_trace, export_series_csv
from repro.obs.metrics import MetricRegistry, MetricsSampler
from repro.obs.trace import NULL_TRACER, Tracer, trace_enabled
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.arrivals import OpenLoopGenerator, RateSchedule


def _build_fleet(sim: Simulator, fleet_config: FleetConfig,
                 server_config: ServerConfig, scheme, scheduler_factory,
                 streams: RandomStreams
                 ) -> Tuple[Fleet, List[ShardState], List[GovernorSet]]:
    """Construct nodes, shards, and (for OS schemes) their governors.

    Replication lags are drawn for every replica in build order from
    the seeded lifecycle stream, *before* any controller decision can
    consume from it --- elastic and static fleets of the same seed get
    identical lag assignments.
    """
    lifecycle_rng = streams.get("fleet-lifecycle")
    static_replicas = fleet_config.replicas_per_shard \
        if fleet_config.static_active_replicas is None \
        else fleet_config.static_active_replicas

    nodes: List[Node] = []
    shards: List[ShardState] = []
    governor_sets: List[GovernorSet] = []
    node_id = 0
    for shard_id in range(fleet_config.shards):
        shard_members: List[Node] = []
        for replica_index in range(1 + fleet_config.replicas_per_shard):
            role = PRIMARY if replica_index == 0 else REPLICA
            lag_s = 0.0
            if role == REPLICA:
                lag_s = lifecycle_rng.uniform(
                    fleet_config.replication_lag_min_s,
                    fleet_config.replication_lag_max_s)
            start_parked = (role == REPLICA
                            and not fleet_config.elastic
                            and replica_index > static_replicas)
            server = DatabaseServer(sim, server_config,
                                    scheduler_factory=scheduler_factory,
                                    initial_freq=scheme.initial_freq)
            if scheduler_factory is None:
                assert scheme.governor_factory is not None
                governors = GovernorSet(scheme.governor_factory)
                governors.attach_all(server.cores, sim)
                governor_sets.append(governors)
            node = Node(sim, node_id, shard_id, role, server,
                        parked_floor_watts=fleet_config.parked_floor_watts,
                        replication_lag_s=lag_s,
                        start_parked=start_parked)
            shard_members.append(node)
            nodes.append(node)
            node_id += 1
        shards.append(ShardState(shard_id, shard_members[0],
                                 shard_members[1:]))
    return Fleet(sim, nodes), shards, governor_sets


def run_fleet_experiment(config: ExperimentConfig,
                         tracer: Optional[Tracer] = None
                         ) -> ExperimentResult:
    """Execute one fleet cell (``config.fleet`` must be set)."""
    wall_start = perf_clock()
    fleet_config = config.fleet
    if fleet_config is None:
        raise ValueError("run_fleet_experiment needs config.fleet")
    fleet_config.validate()
    # repro.faults: fleet cells take fleet-scope fault plans (node
    # crashes, partitions, replica lag) plus load-side bursts; the
    # single-server fault classes act below the node abstraction and do
    # not compose with fleets.
    plan = resolve_fault_plan(config.faults)
    if plan is not None and plan.is_empty:
        plan = None
    if plan is not None:
        if plan.has_server_faults:
            raise ValueError(
                "the fault plan carries single-server faults "
                "(MSR/throttle/stall/skew), which do not compose with "
                "fleet cells; use fleet faults (node crashes, "
                "partitions, replica lag) or bursts instead")
        if plan.degradation.any_enabled:
            raise ValueError(
                "fleet cells do not arm the single-server degradation "
                "policy of a fault plan; the fleet's self-healing "
                "router and failover machinery play that role")
    chaos_armed = plan is not None and plan.has_fleet_faults
    if config.workload_policy != "per-type":
        raise ValueError("fleet cells support the per-type workload "
                         "policy only")
    scheme = scheme_named(config.scheme)
    spec = BENCHMARKS[config.benchmark]()
    streams = RandomStreams(config.seed)
    if tracer is None:
        want_trace = config.trace
        if want_trace is None and (config.trace_path
                                   or config.trace_series_path):
            want_trace = True
        tracer = Tracer() if trace_enabled(want_trace) else NULL_TRACER
    sim = Simulator(tracer=tracer)
    manager = WorkloadManager.per_type_with_slack(spec, config.slack)

    topology = make_topology(config.topology)
    if not topology.per_core and config.topology_switch_latency > 0:
        topology = SocketTopology(
            granularity=topology.granularity,
            cores_per_socket=topology.cores_per_socket,
            cores_per_module=topology.cores_per_module,
            switch_latency_s=config.topology_switch_latency)
    server_config = ServerConfig(
        workers=fleet_config.node_workers,
        request_handlers=fleet_config.node_request_handlers,
        transition_latency=config.transition_latency,
        routing=config.routing,
        cstate_ladder=config.cstate_ladder,
        topology=topology,
    )

    estimator = ExecutionTimeEstimator(config.estimator_window,
                                       config.estimator_percentile)
    if scheme.uses_scheduler:
        scheduler_factory = scheme.make_scheduler_factory(
            server_config.scheduler_frequencies, estimator)
    else:
        scheduler_factory = None
    fleet, shards, governor_sets = _build_fleet(
        sim, fleet_config, server_config, scheme, scheduler_factory,
        streams)
    if scheme.uses_scheduler and config.train_estimators:
        _train_estimator(estimator, manager, spec,
                         server_config.scheduler_frequencies, config,
                         streams.get("fleet-training"))
    read_types = read_only_types(config.benchmark)
    router = ClusterRouter(sim, shards, read_types)

    # ------------------------------------------------------------------
    # Offered load, against the peak-provisioned fleet
    # ------------------------------------------------------------------
    per_node_peak = spec.peak_throughput(fleet_config.node_workers)
    fleet_peak = per_node_peak * fleet_config.provisioned_nodes()
    if config.load_trace is not None:
        low = effective_load_fraction(config.trace_low_fraction) * fleet_peak
        high = effective_load_fraction(config.trace_high_fraction) \
            * fleet_peak
        schedule: Optional[RateSchedule] = RateSchedule(
            [low + v * (high - low) for v in config.load_trace])
        rate_fn = schedule.rate_at
    else:
        schedule = None
        target = effective_load_fraction(config.load_fraction) * fleet_peak
        rate_fn = lambda _now: target  # noqa: E731 - tiny adapter

    if plan is not None and plan.bursts:
        # Same arithmetic as FaultInjector.wrap_rate, against the
        # fleet-wide offered rate.
        base_rate_fn, bursts = rate_fn, plan.bursts

        def rate_fn(now_s: float) -> float:
            rate = base_rate_fn(now_s)
            for spec in bursts:
                if spec.start_s <= now_s < spec.end_s:
                    rate *= spec.multiplier
            return rate

    service_rng = streams.get_batched("fleet-service-times")
    mix_rng = streams.get_batched("fleet-mix")
    key_rng = streams.get_batched("fleet-keys")
    keyspace = fleet_config.keyspace
    choose_type = spec.choose_type
    manager_get = manager.get
    route = router.route

    def on_arrival(now: float) -> None:
        txn_type = choose_type(mix_rng)
        # Keys shard the data; int(u * keyspace) keeps the stream
        # batched (randrange would fork a BatchedStream's sequence).
        key = int(key_rng.random() * keyspace)
        route(Request(manager_get(txn_type.name), txn_type.name, now,
                      txn_type.service.draw_work(service_rng)), key)

    generator = OpenLoopGenerator(sim, rate_fn, on_arrival,
                                  streams.get_batched("fleet-arrivals"))

    # ------------------------------------------------------------------
    # Instrumentation: fleet-wide recorder plus per-shard books
    # ------------------------------------------------------------------
    recorder = LatencyRecorder()
    test_start = config.warmup_seconds
    test_duration = schedule.duration if schedule is not None \
        else config.test_seconds
    test_end = test_start + test_duration
    recorder.set_window(test_start, test_end)
    shard_stats: Dict[int, WorkloadStats] = {
        shard.shard_id: WorkloadStats() for shard in shards}

    def _shard_completion(shard_id: int, request: Request) -> None:
        if not test_start <= request.arrival_time < test_end:
            return
        stats = shard_stats[shard_id]
        stats.offered += 1
        stats.completed += 1
        if not request.met_deadline:
            stats.missed += 1

    def _shard_failure(shard_id: int, request: Request) -> None:
        # Rejections and end-of-run losses: offered but never finished.
        if not test_start <= request.arrival_time < test_end:
            return
        stats = shard_stats[shard_id]
        stats.offered += 1
        stats.missed += 1

    for node in fleet.nodes:
        server = node.server
        server.add_completion_listener(recorder.on_completion)
        server.add_rejection_listener(recorder.on_rejection)
        server.add_completion_listener(
            partial(_shard_completion, node.shard_id))
        server.add_rejection_listener(
            partial(_shard_failure, node.shard_id))

    # ------------------------------------------------------------------
    # Chaos cells only: replication/WAL model, self-healing router,
    # fault injection, and (when enabled) the failover machinery.
    # Healthy cells build none of this, so they stay byte-identical to
    # the pinned PR 8 runs.
    # ------------------------------------------------------------------
    replication: Dict[int, ShardReplication] = {}
    tracker: Optional[AvailabilityTracker] = None
    failover: Optional[FailoverManager] = None
    fleet_injector: Optional[FleetFaultInjector] = None
    if chaos_armed:
        replication = {
            shard.shard_id: ShardReplication(
                sim, shard.shard_id, fleet_config.group_commit_size)
            for shard in shards}
        tracker = AvailabilityTracker(sim,
                                      [s.shard_id for s in shards])
        write_seq = {shard.shard_id: 0 for shard in shards}

        def _log_write(node: Node, request: Request) -> None:
            # Completed writes reach the shard's WAL iff this node is
            # the shard's primary *now* (role at completion time, so a
            # promoted replica starts logging the moment it takes over).
            shard = shards[node.shard_id]
            if request.txn_type in read_types or shard.primary is not node:
                return
            write_seq[node.shard_id] += 1
            replication[node.shard_id].on_write_committed(
                write_seq[node.shard_id])

        for node in fleet.nodes:
            node.server.add_completion_listener(partial(_log_write, node))

        def _on_shed(request: Request, shard_id: int) -> None:
            # Retry-exhausted (or end-of-run flushed) requests: offered
            # and rejected, the unavailability the availability figure
            # charges against the baseline.
            recorder.on_rejection(request)
            _shard_failure(shard_id, request)

        def _on_crash(node: Node, lost: List[Request]) -> None:
            for request in lost:
                recorder.on_lost(request)
                _shard_failure(node.shard_id, request)
            if shards[node.shard_id].primary is node:
                tracker.mark_down(node.shard_id)

        fleet_injector = FleetFaultInjector(sim, plan, fleet, shards,
                                            replication, _on_crash)
        router.arm_self_healing(RouterPolicy.from_config(fleet_config),
                                _on_shed,
                                fleet_injector.effective_lag_s)
        fleet_injector.attach()
        if fleet_config.failover_enabled:
            failover = FailoverManager(sim, fleet, shards, replication,
                                       fleet_config, tracker,
                                       streams.get("fleet-failover"))
            failover.start()

    meter_interval = min(config.meter_interval, test_duration / 4.0)
    meter = PowerMeter(sim, fleet.wall_energy,
                       streams.get("fleet-meter-noise"),
                       interval=meter_interval)

    controller: Optional[ElasticController] = None
    if fleet_config.elastic:
        controller = ElasticController(sim, fleet, router, fleet_config,
                                       per_node_peak,
                                       streams.get("fleet-lifecycle"))
        controller.start()

    sampler: Optional[MetricsSampler] = None
    if tracer.enabled:
        registry = MetricRegistry()
        registry.gauge("fleet_power_watts", "instantaneous fleet draw",
                       fn=fleet.wall_power)
        registry.gauge("active_nodes", "nodes in the active state",
                       fn=lambda: float(fleet.active_count()))
        registry.gauge("queue_depth_total", "requests queued, fleet-wide",
                       fn=lambda: float(fleet.total_queue_length()))
        sampler = MetricsSampler(
            sim, registry, interval_s=config.trace_sample_interval_s,
            tracer=tracer)
        sampler.start()

    # ------------------------------------------------------------------
    # Run the phases, then drain
    # ------------------------------------------------------------------
    generator.start()
    sim.schedule_at(test_start, meter.start, priority=-10)
    sim.run(until=test_end)
    generator.stop()
    if controller is not None:
        controller.stop()
    drain_end = test_end + config.drain_limit_seconds
    while sim.now < drain_end:
        if fleet.all_idle():
            break
        if not sim.step():
            break
    meter.stop()
    if failover is not None:
        failover.stop()
    if router.policy is not None:
        # Requests still waiting on a scheduled retry at the drain
        # limit will never route; shed them so the books close.
        router.flush_pending_retries()
    # Anything still queued when the drain limit passes will never
    # finish; count it offered-and-missed rather than censoring.
    for node in fleet.nodes:
        for worker in node.server.workers:
            queue = getattr(worker.dispatcher, "queue", None)
            if queue is not None:
                for request in queue:
                    recorder.on_lost(request)
                    _shard_failure(node.shard_id, request)
    if sim.sanitize:
        fleet.sanitize_accounting()

    trace_event_count = 0
    if tracer.enabled:
        if sampler is not None:
            sampler.stop()
            sampler.sample_once()  # final state at the end of the drain
        tracer.finalize(sim.now)
        trace_event_count = len(tracer.events)
        if config.trace_path:
            export_chrome_trace(tracer, config.trace_path)
        if config.trace_series_path and sampler is not None:
            export_series_csv(sampler, config.trace_series_path)

    # ------------------------------------------------------------------
    # Collect
    # ------------------------------------------------------------------
    residency: Dict[float, float] = {}
    for node in fleet.nodes:
        for core in node.server.cores:
            core.flush_accounting()
            for freq, seconds in core.freq_residency.items():
                residency[freq] = residency.get(freq, 0.0) + seconds
    for governors in governor_sets:
        governors.detach_all()

    per_shard_failure = {f"shard{shard_id}": stats.failure_rate
                         for shard_id, stats in shard_stats.items()}
    per_shard_offered = {f"shard{shard_id}": stats.offered
                         for shard_id, stats in shard_stats.items()}
    fleet_actions = dict(router.decision_counts())
    if controller is not None:
        fleet_actions.update(controller.actions)
    fleet_actions["boots"] = sum(n.boots for n in fleet.nodes)
    fleet_actions["drains"] = sum(n.drains for n in fleet.nodes)

    availability: Dict[str, float] = {}
    failover_timeline: List[Tuple[float, int, str, int]] = []
    lost_commits = 0
    failovers = 0
    mttr_s = 0.0
    unserved_shards = 0
    faults_injected = 0
    if chaos_armed:
        assert tracker is not None and fleet_injector is not None
        availability = {
            f"shard{shard_id}": fraction for shard_id, fraction in
            tracker.availability(test_start, test_end).items()}
        lost_commits = sum(r.lost_commits for r in replication.values())
        # Shards whose write path is still down when the run ends ---
        # the metric the chaos acceptance pins: zero with failover,
        # positive for the no-failover baseline.
        unserved_shards = sum(
            1 for shard in shards
            if shard.primary.state is not NodeState.ACTIVE)
        faults_injected = fleet_injector.total_injected
        fleet_actions["node_crashes"] = \
            fleet_injector.injected["node_crash"]
        if failover is not None:
            failovers = failover.failovers
            mttr_s = failover.mean_mttr_s
            failover_timeline = list(failover.timeline)
            fleet_actions["failovers"] = failover.failovers
            fleet_actions["replayed_records"] = failover.records_replayed
    all_latencies = [latency for stats in recorder.per_workload.values()
                     for latency in stats.latencies]
    p999_latency_s = percentile(all_latencies, 99.9) \
        if all_latencies else 0.0

    if fleet_config.elastic:
        fleet_label = "elastic"
    else:
        active_replicas = fleet_config.replicas_per_shard \
            if fleet_config.static_active_replicas is None \
            else fleet_config.static_active_replicas
        fleet_label = \
            f"static-{fleet_config.shards * (1 + active_replicas)}"

    return ExperimentResult(
        config=config,
        scheme_label=f"fleet-{fleet_label} {scheme.label}",
        avg_power_watts=meter.average_power(test_start, test_end),
        failure_rate=recorder.failure_rate,
        offered=recorder.total_offered,
        completed=recorder.total_completed,
        missed=recorder.total_missed,
        rejected=recorder.total_rejected,
        throughput=recorder.total_completed / test_duration,
        peak_throughput=fleet_peak,
        per_workload_failure={
            name: stats.failure_rate
            for name, stats in recorder.per_workload.items()},
        per_workload_offered={
            name: stats.offered
            for name, stats in recorder.per_workload.items()},
        cpu_energy_joules=fleet.cpu_energy(),
        wall_energy_joules=fleet.wall_energy(),
        freq_residency=residency,
        power_timeline=(meter.binned_average(test_start, test_end,
                                             config.timeline_bin_seconds)
                        if meter.samples else []),
        load_timeline=list(config.load_trace or []),
        mean_latency_by_workload={
            name: stats.mean_latency()
            for name, stats in recorder.per_workload.items()
            if stats.latencies},
        sim_events=sim.events_processed,
        wall_seconds=perf_clock() - wall_start,
        trace_events=trace_event_count,
        lost=recorder.total_lost,
        faults_injected=faults_injected,
        per_shard_failure=per_shard_failure,
        per_shard_offered=per_shard_offered,
        stale_reads=router.stale_read_bounces,
        fleet_actions=fleet_actions,
        node_timeline=list(fleet.node_timeline),
        availability=availability,
        lost_commits=lost_commits,
        failovers=failovers,
        mttr_s=mttr_s,
        unserved_shards=unserved_shards,
        p999_latency_s=p999_latency_s,
        failover_timeline=failover_timeline,
    )


__all__ = ["run_fleet_experiment"]
