"""repro.fleet: cluster-scale fleet simulation with elastic autoscaling.

The fleet tier lifts the single-server POLARIS model to a sharded,
replicated cluster: :class:`Node` wraps a
:class:`~repro.db.server.DatabaseServer` with a role and a
``warming -> active -> draining -> parked`` lifecycle,
:class:`ClusterRouter` shards requests by key and serves reads from
replicas (bouncing stale reads to primaries), and
:class:`ElasticController` parks and boots whole replicas from the
windowed per-shard load --- the paper's race-to-idle argument applied
to nodes instead of cores.  :func:`run_fleet_experiment` runs one fleet
cell through the standard harness methodology; reach it by setting the
``fleet`` field of :class:`~repro.harness.experiment.ExperimentConfig`.
"""

from repro.fleet.config import FleetConfig
from repro.fleet.controller import ElasticController
from repro.fleet.node import Fleet, Node, NodeState, PRIMARY, REPLICA
from repro.fleet.router import ClusterRouter, ShardState, read_only_types

__all__ = [
    "ClusterRouter",
    "ElasticController",
    "Fleet",
    "FleetConfig",
    "Node",
    "NodeState",
    "PRIMARY",
    "REPLICA",
    "ShardState",
    "read_only_types",
]


def __getattr__(name):
    # run_fleet_experiment imports the harness (which imports
    # FleetConfig from this package); resolve it lazily so
    # ``import repro.fleet`` stays cycle-free.
    if name == "run_fleet_experiment":
        from repro.fleet.experiment import run_fleet_experiment
        return run_fleet_experiment
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
