"""repro.fleet: cluster-scale fleet simulation with elastic autoscaling.

The fleet tier lifts the single-server POLARIS model to a sharded,
replicated cluster: :class:`Node` wraps a
:class:`~repro.db.server.DatabaseServer` with a role and a
``warming -> active -> draining -> parked`` lifecycle,
:class:`ClusterRouter` shards requests by key and serves reads from
replicas (bouncing stale reads to primaries), and
:class:`ElasticController` parks and boots whole replicas from the
windowed per-shard load --- the paper's race-to-idle argument applied
to nodes instead of cores.  :func:`run_fleet_experiment` runs one fleet
cell through the standard harness methodology; reach it by setting the
``fleet`` field of :class:`~repro.harness.experiment.ExperimentConfig`.

PR 9 adds the failure model: :class:`FleetFaultInjector` schedules a
fault plan's node crashes / partitions / replica-lag windows onto the
virtual clock against the per-shard WAL-and-apply model
(:class:`ShardReplication`), :class:`FailoverManager` heartbeats the
shards and promotes the most-caught-up replica after a durable-WAL
replay, and an armed router self-heals with circuit breakers, bounded
retry-with-backoff, and optional hedged reads ---
see DESIGN.md, "Fleet failure model".
"""

from repro.fleet.chaos import FleetFaultInjector, ShardReplication
from repro.fleet.config import FleetConfig
from repro.fleet.controller import ElasticController
from repro.fleet.failover import AvailabilityTracker, FailoverManager
from repro.fleet.node import Fleet, Node, NodeState, PRIMARY, REPLICA
from repro.fleet.router import (
    ClusterRouter, NoActiveNodeError, RouterPolicy, ShardState,
    read_only_types,
)

__all__ = [
    "AvailabilityTracker",
    "ClusterRouter",
    "ElasticController",
    "FailoverManager",
    "Fleet",
    "FleetConfig",
    "FleetFaultInjector",
    "NoActiveNodeError",
    "Node",
    "NodeState",
    "PRIMARY",
    "REPLICA",
    "RouterPolicy",
    "ShardReplication",
    "ShardState",
    "read_only_types",
]


def __getattr__(name):
    # run_fleet_experiment imports the harness (which imports
    # FleetConfig from this package); resolve it lazily so
    # ``import repro.fleet`` stays cycle-free.
    if name == "run_fleet_experiment":
        from repro.fleet.experiment import run_fleet_experiment
        return run_fleet_experiment
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
