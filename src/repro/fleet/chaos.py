"""Fleet-scope fault injection: crashes, partitions, slow followers.

The cluster-scale sibling of :mod:`repro.faults.injector`.  A fleet
cell whose resolved :class:`~repro.faults.plan.FaultPlan` carries fleet
faults (``node_crashes`` / ``partitions`` / ``replica_lags``) arms a
:class:`FleetFaultInjector`, which turns the plan's windows into
virtual-clock events exactly like the server-tier injector does ---
pure data in, scheduled events out, so chaos runs stay byte-
deterministic functions of ``(config, seed, plan)``.

This module also owns :class:`ShardReplication`, the per-shard WAL and
replica-apply model the failure machinery runs on:

* the shard's primary appends one row image + COMMIT per completed
  write into a real :class:`~repro.db.storage.log.LogManager` under
  group commit --- so a crash loses exactly the buffered-but-unforced
  tail, the paper's Shore-MT durability window;
* replicas apply a forced log prefix after their replication lag:
  a record forced at ``t`` is applied by a replica of lag ``L`` at
  ``t + L`` (and never, once the primary is dead --- shipping stops at
  the crash);
* a partition freezes a replica's applied LSN (its effective lag is
  unbounded until the window heals), a :class:`ReplicaLagSpec` adds to
  it, and :func:`FleetFaultInjector.effective_lag_s` feeds both through
  the router's staleness check.

:class:`~repro.fleet.failover.FailoverManager` reads the same state to
pick the most-caught-up replica and to price the WAL replay.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.db.storage.log import KIND_COMMIT, KIND_UPDATE, LogManager, replay
from repro.faults.plan import FaultPlan
from repro.fleet.node import Fleet, Node, NodeState
from repro.fleet.router import ShardState
from repro.sim.engine import Simulator

#: Deterministic ordering of the injected-event counters.
_KINDS = ("node_crash", "partition_begin", "partition_end",
          "replica_lag_begin", "replica_lag_end")


class ShardReplication:
    """One shard's WAL plus the replicas' apply positions."""

    def __init__(self, sim: Simulator, shard_id: int,
                 group_commit_size: int):
        self.sim = sim
        self.shard_id = shard_id
        self.log = LogManager(group_commit_size)
        #: (force time, last durable LSN) per log force, in time order;
        #: a replica of lag L has applied the longest prefix whose
        #: force happened at least L ago (and before the primary died).
        self.force_times: List[Tuple[float, int]] = []
        #: Commits lost so far: buffered tails dropped by crashes plus
        #: durable-but-never-shipped records trimmed at promotion.
        self.lost_commits = 0
        #: Virtual time the shard's primary crashed (None while the
        #: write path is alive); shipping stops here.
        self.crashed_at_s: Optional[float] = None
        self._frozen_lsn: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Primary-side logging
    # ------------------------------------------------------------------
    def on_write_committed(self, txn_id: int) -> None:
        """A write transaction completed on the primary: log its row
        image and COMMIT under group commit."""
        forces_before = self.log.stats.forces
        self.log.append(txn_id, KIND_UPDATE, table=f"shard{self.shard_id}",
                        key=txn_id, after={"txn": txn_id})
        self.log.append(txn_id, KIND_COMMIT)
        if self.log.stats.forces != forces_before:
            self.force_times.append((self.sim.now,
                                     self.log.last_durable_lsn))

    def on_primary_crash(self) -> int:
        """The primary fail-stopped: the buffered tail is gone.  Counts
        and returns the commits it took with it."""
        buffered = self.log.buffered_commits
        self.crashed_at_s = self.sim.now
        self.log.crash()
        self.lost_commits += buffered
        return buffered

    # ------------------------------------------------------------------
    # Replica apply positions
    # ------------------------------------------------------------------
    def applied_lsn(self, node_id: int, lag_s: float,
                    now_s: float) -> int:
        """The LSN through which the replica has applied at ``now_s``."""
        frozen = self._frozen_lsn.get(node_id)
        if frozen is not None:
            return frozen
        applied = 0
        for force_t, lsn in self.force_times:
            if force_t + lag_s > now_s:
                break  # not yet shipped+applied; later forces are later
            if self.crashed_at_s is not None \
                    and force_t > self.crashed_at_s:
                break  # forced after the crash: never shipped
            applied = lsn
        return applied

    def freeze_replica(self, node: Node) -> None:
        """Partition begin: the replica's apply position pins where it
        is now; its staleness grows without bound until healed."""
        if node.node_id not in self._frozen_lsn:
            self._frozen_lsn[node.node_id] = self.applied_lsn(
                node.node_id, node.replication_lag_s, self.sim.now)

    def heal_replica(self, node: Node) -> None:
        self._frozen_lsn.pop(node.node_id, None)

    def is_frozen(self, node_id: int) -> bool:
        return node_id in self._frozen_lsn

    # ------------------------------------------------------------------
    # Promotion (failover)
    # ------------------------------------------------------------------
    def promote_to(self, node: Node, lag_s: float,
                   now_s: float) -> Tuple[int, int]:
        """Re-point the shard's log at ``node``'s applied prefix.

        Durable records beyond the prefix were never shipped --- their
        commits join :attr:`lost_commits` and the log is trimmed with
        :meth:`LogManager.discard_after` so the new primary's history
        ends exactly where its replay does.  Returns ``(records
        replayed, rows recovered)`` from the redo pass.
        """
        applied = self.applied_lsn(node.node_id, lag_s, now_s)
        self.lost_commits += sum(
            1 for r in self.log.durable_records
            if r.kind == KIND_COMMIT and r.lsn > applied)
        self.log.discard_after(applied)
        self.force_times = [(t, lsn) for t, lsn in self.force_times
                            if lsn <= applied]
        records = self.log.durable_records
        tables = replay(records)
        rows = sum(len(rows_by_key) for rows_by_key in tables.values())
        self.crashed_at_s = None  # the write path is alive again
        return len(records), rows


class FleetFaultInjector:
    """Schedules a plan's fleet faults onto the virtual clock."""

    def __init__(self, sim: Simulator, plan: FaultPlan, fleet: Fleet,
                 shards: List[ShardState],
                 replication: Dict[int, ShardReplication],
                 on_crash: Callable[[Node, List], None]):
        self.sim = sim
        self.plan = plan
        self.fleet = fleet
        self.shards = shards
        self.replication = replication
        #: ``on_crash(node, lost_requests)``: the experiment accounts
        #: the corpses (offered-and-lost) and marks the shard down.
        self.on_crash = on_crash
        self.injected: Dict[str, int] = {kind: 0 for kind in _KINDS}
        self._extra_lag_s: Dict[int, float] = {}
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("faults", "fleet-injector")

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _fired(self, kind: str, name: str, **payload) -> None:
        self.injected[kind] += 1
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, name, self.sim.now,
                                **payload)

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Schedule every window edge of the plan's fleet faults."""
        for crash in self.plan.node_crashes:
            if crash.nodes:
                nodes_by_id = {n.node_id: n for n in self.fleet.nodes}
                for node_id in crash.nodes:
                    if node_id not in nodes_by_id:
                        raise ValueError(
                            f"NodeCrashSpec names unknown node {node_id}")
                    self.sim.schedule_at(
                        crash.at_s,
                        partial(self._crash_node, nodes_by_id[node_id]))
            else:
                # Empty target tuple = the primary of every shard, the
                # crash-per-shard plan; resolved at fire time so an
                # earlier failover's promotion is honored.
                for shard in self.shards:
                    self.sim.schedule_at(
                        crash.at_s, partial(self._crash_primary, shard))
        for spec in self.plan.partitions:
            for shard in self._partition_targets(spec):
                self.sim.schedule_at(
                    spec.start_s,
                    partial(self._partition_edge, shard, True))
                self.sim.schedule_at(
                    spec.end_s,
                    partial(self._partition_edge, shard, False))
        for spec in self.plan.replica_lags:
            for node in self._lag_targets(spec):
                self.sim.schedule_at(
                    spec.start_s,
                    partial(self._lag_edge, node, spec.extra_lag_s, True))
                self.sim.schedule_at(
                    spec.end_s,
                    partial(self._lag_edge, node, spec.extra_lag_s, False))

    def _partition_targets(self, spec) -> List[ShardState]:
        if not spec.shards:
            return list(self.shards)
        for shard_id in spec.shards:
            if not 0 <= shard_id < len(self.shards):
                raise ValueError(
                    f"PartitionSpec names unknown shard {shard_id}")
        return [self.shards[shard_id] for shard_id in spec.shards]

    def _lag_targets(self, spec) -> List[Node]:
        if not spec.nodes:
            return list(self.fleet.nodes)
        nodes_by_id = {n.node_id: n for n in self.fleet.nodes}
        targets = []
        for node_id in spec.nodes:
            if node_id not in nodes_by_id:
                raise ValueError(
                    f"ReplicaLagSpec names unknown node {node_id}")
            targets.append(nodes_by_id[node_id])
        return targets

    # ------------------------------------------------------------------
    # Fault mechanics
    # ------------------------------------------------------------------
    def _crash_primary(self, shard: ShardState) -> None:
        self._crash_node(shard.primary)

    def _crash_node(self, node: Node) -> None:
        if node.state is NodeState.CRASHED:
            return  # overlapping specs: one funeral per node
        lost = node.crash()
        lost_commits = 0
        shard = self.shards[node.shard_id]
        if shard.primary is node:
            lost_commits = self.replication[node.shard_id] \
                .on_primary_crash()
        self._fired("node_crash", "fault:node-crash", node=node.node_id,
                    shard=node.shard_id, lost_requests=len(lost),
                    lost_commits=lost_commits)
        self.on_crash(node, lost)

    def _partition_edge(self, shard: ShardState, opening: bool) -> None:
        replication = self.replication[shard.shard_id]
        for node in shard.replicas:
            if opening:
                replication.freeze_replica(node)
            else:
                replication.heal_replica(node)
        self._fired("partition_begin" if opening else "partition_end",
                    f"fault:partition:{'begin' if opening else 'end'}",
                    shard=shard.shard_id)

    def _lag_edge(self, node: Node, extra_lag_s: float,
                  opening: bool) -> None:
        current = self._extra_lag_s.get(node.node_id, 0.0)
        if opening:
            self._extra_lag_s[node.node_id] = current + extra_lag_s
        else:
            remaining = current - extra_lag_s
            if remaining > 0.0:
                self._extra_lag_s[node.node_id] = remaining
            else:
                self._extra_lag_s.pop(node.node_id, None)
        self._fired("replica_lag_begin" if opening else "replica_lag_end",
                    f"fault:replica-lag:{'begin' if opening else 'end'}",
                    node=node.node_id, extra_lag_s=extra_lag_s)

    # ------------------------------------------------------------------
    # Router staleness hook
    # ------------------------------------------------------------------
    def effective_lag_s(self, replica: Node, now_s: float) -> float:
        """The replica's apply lag as the router should see it now:
        infinite while partitioned, base + extra under a slow-follower
        window, base otherwise."""
        if self.replication[replica.shard_id].is_frozen(replica.node_id):
            return float("inf")
        return replica.replication_lag_s \
            + self._extra_lag_s.get(replica.node_id, 0.0)


__all__ = ["FleetFaultInjector", "ShardReplication"]
