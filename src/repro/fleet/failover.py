"""Primary failover: heartbeat detection, promotion, WAL replay.

The recovery half of the fleet failure model (chaos is the other half,
:mod:`repro.fleet.chaos`).  A :class:`FailoverManager` heartbeats every
shard on the virtual clock; a shard whose primary has been crashed for
at least ``heartbeat_timeout_s`` at a tick is *detected*, and failover
begins:

1. **Elect** the most-caught-up active replica --- highest applied LSN
   per :class:`~repro.fleet.chaos.ShardReplication`, ties to the lowest
   node id (deterministic).  If no replica is active but one is parked,
   a warm spare is booted first and the election re-runs when it comes
   up.
2. **Replay** the elected replica's durable WAL prefix through
   :func:`repro.db.storage.log.replay` (redo-only).  The replay costs
   ``replay_fixed_s + replay_per_record_s * records`` of virtual time
   --- the dominant term of MTTR after detection.  Durable commits
   beyond the replica's applied prefix were never shipped; they are
   counted lost and trimmed (``LogManager.discard_after``).
3. **Promote**: the replica becomes the shard's primary (zero apply
   lag), the corpse is demoted into the replica list, and the shard's
   write path is open again.

Every step lands on the :attr:`FailoverManager.timeline` --- byte-
identical across same-seed runs, which the determinism gate pins ---
and inside an async ``failover`` trace span per shard.

:class:`AvailabilityTracker` measures the cost: per-shard outage
windows (primary crash -> promotion complete, or end of run for the
no-failover baseline), from which the experiment derives availability,
MTTR, and the p99.9-during-failover tail.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.fleet.chaos import ShardReplication
from repro.fleet.config import FleetConfig
from repro.fleet.node import Fleet, Node, NodeState, REPLICA
from repro.fleet.router import ShardState
from repro.sim.engine import Simulator


class AvailabilityTracker:
    """Per-shard write-path outage windows on the virtual clock."""

    def __init__(self, sim: Simulator, shard_ids: List[int]):
        self.sim = sim
        self._down_since: Dict[int, Optional[float]] = {
            shard_id: None for shard_id in shard_ids}
        #: Closed outage windows: (shard_id, start_s, end_s).
        self.windows: List[Tuple[int, float, float]] = []

    def mark_down(self, shard_id: int) -> None:
        if self._down_since[shard_id] is None:
            self._down_since[shard_id] = self.sim.now

    def mark_up(self, shard_id: int) -> None:
        start_s = self._down_since[shard_id]
        if start_s is not None:
            self.windows.append((shard_id, start_s, self.sim.now))
            self._down_since[shard_id] = None

    def outage_windows(self, end_s: float) -> List[Tuple[int, float, float]]:
        """All windows, still-open outages clipped at ``end_s``."""
        windows = list(self.windows)
        for shard_id in sorted(self._down_since):
            start_s = self._down_since[shard_id]
            if start_s is not None and start_s < end_s:
                windows.append((shard_id, start_s, end_s))
        return windows

    def availability(self, start_s: float,
                     end_s: float) -> Dict[int, float]:
        """Fraction of ``[start_s, end_s)`` each shard's write path was
        up (1.0 when the window is empty)."""
        duration = end_s - start_s
        downtime: Dict[int, float] = {
            shard_id: 0.0 for shard_id in self._down_since}
        for shard_id, w_start, w_end in self.outage_windows(end_s):
            overlap = min(w_end, end_s) - max(w_start, start_s)
            if overlap > 0:
                downtime[shard_id] += overlap
        if duration <= 0:
            return {shard_id: 1.0 for shard_id in downtime}
        return {shard_id: 1.0 - down / duration
                for shard_id, down in sorted(downtime.items())}


class FailoverManager:
    """Detects crashed primaries and promotes caught-up replicas."""

    def __init__(self, sim: Simulator, fleet: Fleet,
                 shards: List[ShardState],
                 replication: Dict[int, ShardReplication],
                 config: FleetConfig, tracker: AvailabilityTracker,
                 lifecycle_rng: random.Random):
        self.sim = sim
        self.fleet = fleet
        self.shards = shards
        self.replication = replication
        self.config = config
        self.tracker = tracker
        #: Boot latencies for warm spares booted mid-failover; a
        #: dedicated stream ("fleet-failover") so the elastic
        #: controller's draw sequence is untouched by failovers.
        self.lifecycle_rng = lifecycle_rng
        #: (time_s, shard_id, event, node_id) --- the failover
        #: timeline; byte-identical across same-seed runs.
        self.timeline: List[Tuple[float, int, str, int]] = []
        self.mttr_samples: List[float] = []
        self.failovers = 0
        self.records_replayed = 0
        self.rows_recovered = 0
        self._in_progress: Dict[int, bool] = {}
        self._tick_event = None
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("fleet", "failover")

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._tick_event = self.sim.schedule(
            self.config.heartbeat_interval_s, self._tick)

    def stop(self) -> None:
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    @property
    def mean_mttr_s(self) -> float:
        """Mean crash -> promotion-complete time (0.0 before any)."""
        if not self.mttr_samples:
            return 0.0
        return sum(self.mttr_samples) / len(self.mttr_samples)

    def _event(self, shard: ShardState, event: str, node_id: int) -> None:
        now_s = self.sim.now
        self.timeline.append((now_s, shard.shard_id, event, node_id))
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, f"failover:{event}",
                                now_s, shard=shard.shard_id,
                                node=node_id)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        timeout_s = self.config.heartbeat_timeout_s
        now_s = self.sim.now
        for shard in self.shards:
            primary = shard.primary
            if primary.state is not NodeState.CRASHED:
                continue
            if self._in_progress.get(shard.shard_id):
                continue
            assert primary.crashed_at_s is not None
            if now_s - primary.crashed_at_s >= timeout_s:
                self._detect(shard)
        self._tick_event = self.sim.schedule(
            self.config.heartbeat_interval_s, self._tick)

    def _detect(self, shard: ShardState) -> None:
        self._in_progress[shard.shard_id] = True
        if self.tracer.enabled:
            self.tracer.async_begin("fleet", f"failover-{shard.shard_id}",
                                    "failover", self.sim.now,
                                    shard=shard.shard_id)
        self._event(shard, "detected", shard.primary.node_id)
        self._elect(shard)

    def _elect(self, shard: ShardState) -> None:
        replication = self.replication[shard.shard_id]
        now_s = self.sim.now
        candidates = [r for r in shard.replicas
                      if r.state is NodeState.ACTIVE]
        if not candidates:
            spare = next((r for r in shard.replicas
                          if r.state is NodeState.PARKED), None)
            if spare is None:
                # Nothing active, nothing to boot: the shard stays down
                # (recorded once; the outage runs to end of run).
                self._event(shard, "stranded", -1)
                return
            boot_s = self.lifecycle_rng.uniform(
                self.config.boot_latency_min_s,
                self.config.boot_latency_max_s)
            self._event(shard, "boot-spare", spare.node_id)
            spare.unpark(boot_s, on_active=lambda _node:
                         self._elect(shard))
            return
        # Most caught-up wins; ties to the lowest node id (negated in
        # the max key) --- fully deterministic.
        winner = max(candidates,
                     key=lambda node: (replication.applied_lsn(
                         node.node_id, node.replication_lag_s, now_s),
                         -node.node_id))
        records, rows = replication.promote_to(
            winner, winner.replication_lag_s, now_s)
        self.records_replayed += records
        self.rows_recovered += rows
        replay_s = self.config.replay_fixed_s \
            + self.config.replay_per_record_s * records
        self._event(shard, "replay", winner.node_id)
        self.sim.schedule(replay_s,
                          lambda: self._finish(shard, winner))

    def _finish(self, shard: ShardState, winner: Node) -> None:
        if winner.state is not NodeState.ACTIVE:
            # The winner died (or was drained) during its replay:
            # re-run the election.
            self._event(shard, "re-elect", winner.node_id)
            self._elect(shard)
            return
        corpse = shard.primary
        winner.promote()
        shard.replicas.remove(winner)
        corpse.role = REPLICA
        shard.replicas.append(corpse)
        shard.primary = winner
        assert corpse.crashed_at_s is not None
        self.mttr_samples.append(self.sim.now - corpse.crashed_at_s)
        self.failovers += 1
        self._in_progress[shard.shard_id] = False
        self.tracker.mark_up(shard.shard_id)
        self._event(shard, "promoted", winner.node_id)
        if self.tracer.enabled:
            self.tracer.async_end("fleet", f"failover-{shard.shard_id}",
                                  "failover", self.sim.now,
                                  new_primary=winner.node_id)


__all__ = ["AvailabilityTracker", "FailoverManager"]
