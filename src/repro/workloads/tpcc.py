"""TPC-C workload: schema, loader, functional transactions, and spec.

The paper uses Shore-Kits' TPC-C implementation with the four
transaction types and mix shown in its Figure 3:

=============  ======  ===============  ==============
Type           Mix     Mean @2.8 GHz    P95 @2.8 GHz
=============  ======  ===============  ==============
New Order      45%     2059 us          5414 us
Payment        47%     301 us           859 us
Order Status   4%      250 us           1682 us
Stock Level    4%      3435 us          5106 us
=============  ======  ===============  ==============

Those numbers calibrate the service-time models; the *functional*
bodies below really execute against the storage engine so that the
integrity tests (TPC-C consistency conditions) have something to bite.

The loader is scale-parameterized; defaults are shrunk from the TPC-C
spec sizes (3000 customers/district, 100k items) to keep functional
tests fast, while preserving every relationship the transactions touch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.db.storage.database import Database
from repro.db.storage.errors import Rollback
from repro.workloads.base import BenchmarkSpec, ServiceTimeModel, TransactionType

#: Figure 3 calibration: name -> (mix %, mean seconds, p95 seconds) at 2.8 GHz.
FIGURE3_CALIBRATION = {
    "NewOrder":    (45.0, 2059e-6, 5414e-6),
    "Payment":     (47.0, 301e-6, 859e-6),
    "OrderStatus": (4.0, 250e-6, 1682e-6),
    "StockLevel":  (4.0, 3435e-6, 5106e-6),
}

#: Figure 3 also reports the 1.2 GHz column; kept for the fig3 bench.
FIGURE3_AT_1200MHZ = {
    "NewOrder":    (4772e-6, 12048e-6),
    "Payment":     (733e-6, 2388e-6),
    "OrderStatus": (809e-6, 3453e-6),
    "StockLevel":  (8062e-6, 11495e-6),
}

#: Paper Section 6.1: database scale factor (warehouses) for TPC-C.
PAPER_SCALE_FACTOR = 48


@dataclass
class TpccConfig:
    """Loader scale parameters (spec values in comments)."""

    warehouses: int = 1
    districts_per_warehouse: int = 10   # spec: 10
    customers_per_district: int = 30    # spec: 3000
    items: int = 100                    # spec: 100000
    initial_orders_per_district: int = 10  # spec: 3000
    new_order_rollback_rate: float = 0.01  # spec: 1% unused item


# ----------------------------------------------------------------------
# Schema + loader
# ----------------------------------------------------------------------
def create_schema(db: Database) -> None:
    """Create the nine TPC-C tables and their secondary indexes."""
    db.create_table("warehouse", ("w_id", "w_name", "w_tax", "w_ytd"),
                    ("w_id",))
    db.create_table("district",
                    ("d_w_id", "d_id", "d_name", "d_tax", "d_ytd",
                     "d_next_o_id"),
                    ("d_w_id", "d_id"))
    customer = db.create_table(
        "customer",
        ("c_w_id", "c_d_id", "c_id", "c_first", "c_last", "c_credit",
         "c_balance", "c_ytd_payment", "c_payment_cnt", "c_delivery_cnt"),
        ("c_w_id", "c_d_id", "c_id"))
    customer.create_index("by_last_name",
                          ("c_w_id", "c_d_id", "c_last"), ordered=True)
    db.create_table("item", ("i_id", "i_name", "i_price"), ("i_id",))
    db.create_table("stock",
                    ("s_w_id", "s_i_id", "s_quantity", "s_ytd",
                     "s_order_cnt", "s_remote_cnt"),
                    ("s_w_id", "s_i_id"))
    orders = db.create_table(
        "orders",
        ("o_w_id", "o_d_id", "o_id", "o_c_id", "o_entry_d", "o_ol_cnt",
         "o_carrier_id"),
        ("o_w_id", "o_d_id", "o_id"))
    orders.create_index("by_customer",
                        ("o_w_id", "o_d_id", "o_c_id", "o_id"),
                        unique=True, ordered=True)
    db.create_table("new_order", ("no_w_id", "no_d_id", "no_o_id"),
                    ("no_w_id", "no_d_id", "no_o_id"))
    ol = db.create_table(
        "order_line",
        ("ol_w_id", "ol_d_id", "ol_o_id", "ol_number", "ol_i_id",
         "ol_supply_w_id", "ol_quantity", "ol_amount", "ol_delivery_d"),
        ("ol_w_id", "ol_d_id", "ol_o_id", "ol_number"))
    ol.create_index("by_order", ("ol_w_id", "ol_d_id", "ol_o_id"),
                    ordered=True)
    db.create_table("history",
                    ("h_id", "h_c_w_id", "h_c_d_id", "h_c_id", "h_w_id",
                     "h_d_id", "h_amount", "h_date"),
                    ("h_id",))


_LAST_NAMES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES",
               "ESE", "ANTI", "CALLY", "ATION", "EING")


def customer_last_name(number: int) -> str:
    """TPC-C last-name generator: syllables of the 3 digits of ``number``."""
    digits = (number // 100 % 10, number // 10 % 10, number % 10)
    return "".join(_LAST_NAMES[d] for d in digits)


def load(db: Database, config: TpccConfig, rng: random.Random) -> None:
    """Populate a schema-created database at the configured scale."""
    with db.transaction() as txn:
        for i_id in range(1, config.items + 1):
            txn.insert("item", {
                "i_id": i_id,
                "i_name": f"item-{i_id}",
                "i_price": round(rng.uniform(1.0, 100.0), 2),
            })
    for w_id in range(1, config.warehouses + 1):
        _load_warehouse(db, config, rng, w_id)
    db.log.force()


def _load_warehouse(db: Database, config: TpccConfig, rng: random.Random,
                    w_id: int) -> None:
    with db.transaction() as txn:
        txn.insert("warehouse", {
            "w_id": w_id, "w_name": f"wh-{w_id}",
            "w_tax": round(rng.uniform(0.0, 0.2), 4), "w_ytd": 300000.0,
        })
        for i_id in range(1, config.items + 1):
            txn.insert("stock", {
                "s_w_id": w_id, "s_i_id": i_id,
                "s_quantity": rng.randint(10, 100),
                "s_ytd": 0, "s_order_cnt": 0, "s_remote_cnt": 0,
            })
    for d_id in range(1, config.districts_per_warehouse + 1):
        _load_district(db, config, rng, w_id, d_id)


def _load_district(db: Database, config: TpccConfig, rng: random.Random,
                   w_id: int, d_id: int) -> None:
    n_orders = min(config.initial_orders_per_district,
                   config.customers_per_district)
    with db.transaction() as txn:
        txn.insert("district", {
            "d_w_id": w_id, "d_id": d_id, "d_name": f"d-{w_id}-{d_id}",
            "d_tax": round(rng.uniform(0.0, 0.2), 4),
            "d_ytd": 30000.0, "d_next_o_id": n_orders + 1,
        })
        for c_id in range(1, config.customers_per_district + 1):
            txn.insert("customer", {
                "c_w_id": w_id, "c_d_id": d_id, "c_id": c_id,
                "c_first": f"first-{c_id}",
                "c_last": customer_last_name(c_id - 1),
                "c_credit": "GC" if rng.random() < 0.9 else "BC",
                "c_balance": -10.0, "c_ytd_payment": 10.0,
                "c_payment_cnt": 1, "c_delivery_cnt": 0,
            })
        # Initial orders: customers 1..n_orders in a random permutation.
        c_ids = list(range(1, config.customers_per_district + 1))
        rng.shuffle(c_ids)
        for o_id in range(1, n_orders + 1):
            ol_cnt = rng.randint(5, 15)
            txn.insert("orders", {
                "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                "o_c_id": c_ids[o_id - 1], "o_entry_d": 0.0,
                "o_ol_cnt": ol_cnt, "o_carrier_id": rng.randint(1, 10),
            })
            for number in range(1, ol_cnt + 1):
                i_id = rng.randint(1, config.items)
                txn.insert("order_line", {
                    "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                    "ol_number": number, "ol_i_id": i_id,
                    "ol_supply_w_id": w_id,
                    "ol_quantity": rng.randint(1, 10),
                    "ol_amount": round(rng.uniform(0.01, 9999.99), 2),
                    "ol_delivery_d": 0.0,
                })


# ----------------------------------------------------------------------
# Transaction bodies
# ----------------------------------------------------------------------
_history_seq = 0


def _next_history_id() -> int:
    global _history_seq
    _history_seq += 1
    return _history_seq


def new_order(db: Database, rng: random.Random, config: TpccConfig,
              now: float = 0.0) -> Dict:
    """TPC-C New Order: place an order of 5-15 lines; 1% roll back."""
    w_id = rng.randint(1, config.warehouses)
    d_id = rng.randint(1, config.districts_per_warehouse)
    c_id = rng.randint(1, config.customers_per_district)
    ol_cnt = rng.randint(5, 15)
    rollback = rng.random() < config.new_order_rollback_rate

    with db.transaction() as txn:
        warehouse = txn.get("warehouse", (w_id,))
        district = txn.get("district", (w_id, d_id), for_update=True)
        customer = txn.get("customer", (w_id, d_id, c_id))
        o_id = district["d_next_o_id"]
        txn.update("district", (w_id, d_id), {"d_next_o_id": o_id + 1})
        txn.insert("orders", {
            "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id, "o_c_id": c_id,
            "o_entry_d": now, "o_ol_cnt": ol_cnt, "o_carrier_id": None,
        })
        txn.insert("new_order",
                   {"no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id})
        total = 0.0
        for number in range(1, ol_cnt + 1):
            if rollback and number == ol_cnt:
                # Spec: the last item number of 1% of New Orders is
                # unused, forcing a rollback.
                raise Rollback("unused item number")
            i_id = rng.randint(1, config.items)
            item = txn.get("item", (i_id,))
            stock = txn.get("stock", (w_id, i_id), for_update=True)
            quantity = rng.randint(1, 10)
            new_qty = stock["s_quantity"] - quantity
            if new_qty < 10:
                new_qty += 91
            txn.update("stock", (w_id, i_id), {
                "s_quantity": new_qty,
                "s_ytd": stock["s_ytd"] + quantity,
                "s_order_cnt": stock["s_order_cnt"] + 1,
            })
            amount = round(quantity * item["i_price"], 2)
            total += amount
            txn.insert("order_line", {
                "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                "ol_number": number, "ol_i_id": i_id, "ol_supply_w_id": w_id,
                "ol_quantity": quantity, "ol_amount": amount,
                "ol_delivery_d": None,
            })
        total *= (1.0 + warehouse["w_tax"] + district["d_tax"])
        return {"o_id": o_id, "c_id": c_id, "total": round(total, 2),
                "customer_credit": customer["c_credit"]}


def payment(db: Database, rng: random.Random, config: TpccConfig,
            now: float = 0.0) -> Dict:
    """TPC-C Payment: apply a payment to warehouse/district/customer.

    60% of lookups are by customer id, 40% by last name (spec 2.5.1.2),
    served through the ``by_last_name`` index.
    """
    w_id = rng.randint(1, config.warehouses)
    d_id = rng.randint(1, config.districts_per_warehouse)
    amount = round(rng.uniform(1.0, 5000.0), 2)

    with db.transaction() as txn:
        warehouse = txn.get("warehouse", (w_id,), for_update=True)
        txn.update("warehouse", (w_id,),
                   {"w_ytd": warehouse["w_ytd"] + amount})
        district = txn.get("district", (w_id, d_id), for_update=True)
        txn.update("district", (w_id, d_id),
                   {"d_ytd": district["d_ytd"] + amount})

        if rng.random() < 0.60:
            c_id = rng.randint(1, config.customers_per_district)
        else:
            last = customer_last_name(
                rng.randint(0, config.customers_per_district - 1))
            matches = txn.lookup("customer", "by_last_name",
                                 (w_id, d_id, last))
            if not matches:  # possible at tiny scales
                c_id = rng.randint(1, config.customers_per_district)
            else:
                matches.sort(key=lambda r: r["c_first"])
                c_id = matches[(len(matches) - 1) // 2]["c_id"]

        customer = txn.get("customer", (w_id, d_id, c_id), for_update=True)
        txn.update("customer", (w_id, d_id, c_id), {
            "c_balance": customer["c_balance"] - amount,
            "c_ytd_payment": customer["c_ytd_payment"] + amount,
            "c_payment_cnt": customer["c_payment_cnt"] + 1,
        })
        txn.insert("history", {
            "h_id": _next_history_id(), "h_c_w_id": w_id, "h_c_d_id": d_id,
            "h_c_id": c_id, "h_w_id": w_id, "h_d_id": d_id,
            "h_amount": amount, "h_date": now,
        })
        return {"c_id": c_id, "amount": amount}


def order_status(db: Database, rng: random.Random, config: TpccConfig,
                 now: float = 0.0) -> Dict:
    """TPC-C Order Status: read a customer's most recent order."""
    w_id = rng.randint(1, config.warehouses)
    d_id = rng.randint(1, config.districts_per_warehouse)
    c_id = rng.randint(1, config.customers_per_district)

    with db.transaction() as txn:
        customer = txn.get("customer", (w_id, d_id, c_id))
        orders = list(txn.range_scan(
            "orders", "by_customer",
            (w_id, d_id, c_id, 0), (w_id, d_id, c_id, 1 << 60)))
        lines: List[Dict] = []
        last_o_id = None
        if orders:
            last = orders[-1]
            last_o_id = last["o_id"]
            lines = list(txn.range_scan(
                "order_line", "by_order",
                (w_id, d_id, last_o_id), (w_id, d_id, last_o_id)))
        return {"c_id": c_id, "balance": customer["c_balance"],
                "last_order": last_o_id, "line_count": len(lines)}


def stock_level(db: Database, rng: random.Random, config: TpccConfig,
                now: float = 0.0, threshold: Optional[int] = None) -> Dict:
    """TPC-C Stock Level: count low-stock items in the last 20 orders."""
    w_id = rng.randint(1, config.warehouses)
    d_id = rng.randint(1, config.districts_per_warehouse)
    if threshold is None:
        threshold = rng.randint(10, 20)

    with db.transaction() as txn:
        district = txn.get("district", (w_id, d_id))
        next_o_id = district["d_next_o_id"]
        low = max(1, next_o_id - 20)
        item_ids = set()
        for line in txn.range_scan(
                "order_line", "by_order",
                (w_id, d_id, low), (w_id, d_id, next_o_id - 1)):
            item_ids.add(line["ol_i_id"])
        low_stock = 0
        for i_id in sorted(item_ids):
            stock = txn.get("stock", (w_id, i_id))
            if stock["s_quantity"] < threshold:
                low_stock += 1
        return {"d_id": d_id, "threshold": threshold, "low_stock": low_stock}


#: Body registry in mix order.
TRANSACTION_BODIES = {
    "NewOrder": new_order,
    "Payment": payment,
    "OrderStatus": order_status,
    "StockLevel": stock_level,
}


# ----------------------------------------------------------------------
# Spec construction
# ----------------------------------------------------------------------
#: Memoized body-less spec: the harness builds one per experiment cell,
#: and the spec (types, service models, cumulative mix) is immutable
#: and stateless, so sweeps share a single instance.
_BODILESS_SPEC: "BenchmarkSpec | None" = None


def make_spec(include_bodies: bool = True) -> BenchmarkSpec:
    """The TPC-C benchmark spec calibrated to the paper's Figure 3."""
    global _BODILESS_SPEC
    if not include_bodies and _BODILESS_SPEC is not None:
        return _BODILESS_SPEC
    types = []
    for name, (weight, mean_s, p95_s) in FIGURE3_CALIBRATION.items():
        body = TRANSACTION_BODIES[name] if include_bodies else None
        types.append(TransactionType(
            name, weight, ServiceTimeModel(mean_s, p95_s), body))
    spec = BenchmarkSpec("tpcc", types)
    if not include_bodies:
        _BODILESS_SPEC = spec
    return spec


def build_database(config: Optional[TpccConfig] = None,
                   seed: int = 0) -> Database:
    """Create, load, and return a TPC-C database."""
    config = config or TpccConfig()
    db = Database()
    create_schema(db)
    load(db, config, random.Random(seed))
    return db


# ----------------------------------------------------------------------
# Consistency conditions (TPC-C clause 3.3.2, used by the test suite)
# ----------------------------------------------------------------------
def check_consistency(db: Database, config: TpccConfig) -> List[str]:
    """Check TPC-C consistency conditions; returns a list of violations."""
    problems: List[str] = []
    warehouse_tbl = db.table("warehouse")
    district_tbl = db.table("district")
    orders_tbl = db.table("orders")
    new_order_tbl = db.table("new_order")
    order_line_tbl = db.table("order_line")

    districts_by_wh: Dict[int, List[Dict]] = {}
    for district in district_tbl.scan_all():
        districts_by_wh.setdefault(district["d_w_id"], []).append(district)

    # Condition 1: W_YTD = sum(D_YTD).
    for warehouse in warehouse_tbl.scan_all():
        w_id = warehouse["w_id"]
        d_sum = sum(d["d_ytd"] for d in districts_by_wh.get(w_id, []))
        if abs(warehouse["w_ytd"] - d_sum) > 1e-6:
            problems.append(
                f"C1: w_ytd {warehouse['w_ytd']} != sum(d_ytd) {d_sum} "
                f"for warehouse {w_id}")

    # Conditions 2 and 3: per-district order-id bookkeeping.
    max_o: Dict[tuple, int] = {}
    ol_counts: Dict[tuple, int] = {}
    for order in orders_tbl.scan_all():
        key = (order["o_w_id"], order["o_d_id"])
        max_o[key] = max(max_o.get(key, 0), order["o_id"])
        ol_counts[(order["o_w_id"], order["o_d_id"], order["o_id"])] = \
            order["o_ol_cnt"]
    for district in district_tbl.scan_all():
        key = (district["d_w_id"], district["d_id"])
        expected = district["d_next_o_id"] - 1
        if max_o.get(key, 0) != expected:
            problems.append(
                f"C2: max(o_id)={max_o.get(key, 0)} != d_next_o_id-1="
                f"{expected} for district {key}")

    # Condition 4: per order, count(order_line) = o_ol_cnt.
    line_counts: Dict[tuple, int] = {}
    for line in order_line_tbl.scan_all():
        key = (line["ol_w_id"], line["ol_d_id"], line["ol_o_id"])
        line_counts[key] = line_counts.get(key, 0) + 1
    for key, expected in ol_counts.items():
        if line_counts.get(key, 0) != expected:
            problems.append(
                f"C4: order {key} has {line_counts.get(key, 0)} lines, "
                f"o_ol_cnt says {expected}")

    # New-order rows must reference existing orders.
    for no_row in new_order_tbl.scan_all():
        key = (no_row["no_w_id"], no_row["no_d_id"], no_row["no_o_id"])
        if key not in ol_counts:
            problems.append(f"NO row {key} without matching order")

    return problems
