"""Transaction types, service-time models, and benchmark specs.

Service-time calibration
------------------------
The paper's Figure 3 gives, per TPC-C transaction type, the mean and
95th-percentile execution time at the maximum (2.8 GHz) and minimum
(1.2 GHz) frequencies.  Two observations drive the model here:

1. The 1.2 GHz times are almost exactly ``2.8/1.2 = 2.33x`` the 2.8 GHz
   times (NewOrder 2.32x, Payment 2.44x, StockLevel 2.35x), i.e. these
   transactions are CPU-bound and execution time scales as ``1/f``.
   We therefore draw a *work* amount ``w`` in giga-cycles per
   transaction; at frequency ``f`` GHz it runs for ``w / f`` seconds.
2. The tails are heavy: P95 is 2.5--4.8x the mean.  A lognormal fitted
   to (mean, P95) captures most types.  Order Status has P95 = 6.7x its
   mean, beyond what any lognormal can produce (the ratio is capped at
   ``exp(z95^2 / 2) ~ 3.87``); for such types we use a two-component
   model --- a lognormal body plus a rare "long" execution spike (a
   customer with many order lines) --- solved so both the mean and the
   P95 match the paper's numbers.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: z-score of the 95th percentile of the standard normal.
Z95 = 1.6448536269514722

#: Maximum P95/mean ratio a lognormal can express.
MAX_LOGNORMAL_RATIO = math.exp(Z95 ** 2 / 2.0)


def fit_lognormal(mean: float, p95: float) -> Tuple[float, float]:
    """Return ``(mu, sigma)`` of the lognormal with the given mean and P95.

    Solves ``exp(mu + sigma^2/2) = mean`` and
    ``exp(mu + z95*sigma) = p95``; raises ``ValueError`` when the ratio
    ``p95/mean`` exceeds what a lognormal can produce.
    """
    if mean <= 0 or p95 <= 0:
        raise ValueError("mean and p95 must be positive")
    ratio = p95 / mean
    if ratio < 1.0:
        raise ValueError(f"p95 ({p95}) below mean ({mean})")
    discriminant = Z95 ** 2 - 2.0 * math.log(ratio)
    if discriminant < 0:
        raise ValueError(
            f"p95/mean ratio {ratio:.2f} exceeds lognormal maximum "
            f"{MAX_LOGNORMAL_RATIO:.2f}")
    sigma = Z95 - math.sqrt(discriminant)
    mu = math.log(mean) - sigma ** 2 / 2.0
    return mu, sigma


class ServiceTimeModel:
    """Draws per-transaction work (giga-cycles) matching (mean, P95).

    ``mean_seconds`` / ``p95_seconds`` are execution times at the
    reference frequency ``ref_freq_ghz``.  :meth:`draw_work` returns
    work in giga-cycles such that running it at frequency ``f`` GHz
    takes ``work / f`` seconds.
    """

    #: Probability of the "long execution" component when the lognormal
    #: cannot reach the requested tail ratio.
    SPIKE_PROBABILITY = 0.08
    #: Relative jitter applied to the spike duration.
    SPIKE_JITTER = 0.10
    #: Sigma of the lognormal body in spike mode.
    BODY_SIGMA = 0.45

    def __init__(self, mean_seconds: float, p95_seconds: float,
                 ref_freq_ghz: float = 2.8):
        if mean_seconds <= 0 or p95_seconds < mean_seconds:
            raise ValueError("need 0 < mean <= p95")
        self.mean_seconds = mean_seconds
        self.p95_seconds = p95_seconds
        self.ref_freq_ghz = ref_freq_ghz
        try:
            self._mu, self._sigma = fit_lognormal(mean_seconds, p95_seconds)
            self._spike_seconds: Optional[float] = None
            self._body_mu: Optional[float] = None
        except ValueError:
            # Two-component model: body lognormal + rare long execution.
            q = self.SPIKE_PROBABILITY
            self._spike_seconds = p95_seconds
            body_mean = (mean_seconds - q * p95_seconds) / (1.0 - q)
            if body_mean <= 0:
                raise ValueError(
                    f"infeasible (mean={mean_seconds}, p95={p95_seconds})")
            self._body_mu = math.log(body_mean) - self.BODY_SIGMA ** 2 / 2.0
            self._mu = self._sigma = None  # type: ignore[assignment]

    @property
    def uses_spike_model(self) -> bool:
        """Whether the heavy-tail two-component model is in effect."""
        return self._spike_seconds is not None

    def draw_seconds(self, rng: random.Random) -> float:
        """Sample an execution time at the reference frequency.

        Hot path: one draw per offered request.  Both branches consume
        entropy through ``rng.random()`` only (``lognormvariate``
        included), so service streams batch safely.
        """
        mu = self._mu
        if mu is not None:
            return rng.lognormvariate(mu, self._sigma)
        if rng.random() < self.SPIKE_PROBABILITY:
            jitter = 1.0 + self.SPIKE_JITTER * (2.0 * rng.random() - 1.0)
            return self._spike_seconds * jitter
        return rng.lognormvariate(self._body_mu, self.BODY_SIGMA)

    def draw_work(self, rng: random.Random) -> float:
        """Sample the transaction's work in giga-cycles."""
        return self.draw_seconds(rng) * self.ref_freq_ghz

    # -- analysis helpers ------------------------------------------------
    def mean_work(self) -> float:
        """Expected work in giga-cycles."""
        return self.mean_seconds * self.ref_freq_ghz

    def expected_seconds_at(self, freq_ghz: float) -> float:
        """Expected execution time at ``freq_ghz`` (pure 1/f scaling)."""
        return self.mean_seconds * self.ref_freq_ghz / freq_ghz


#: Signature of a functional transaction body: (database, rng, inputs) -> result.
TransactionBody = Callable[..., dict]


@dataclass
class TransactionType:
    """One request type of a benchmark.

    ``mix_weight`` is its share of the benchmark mix (weights need not
    sum to 1; the spec normalizes).  ``body`` is the optional functional
    implementation run against the storage engine.
    """

    name: str
    mix_weight: float
    service: ServiceTimeModel
    body: Optional[TransactionBody] = None

    def __post_init__(self):
        if self.mix_weight < 0:
            raise ValueError("mix weight cannot be negative")


class BenchmarkSpec:
    """A benchmark: a set of transaction types with a mix.

    >>> spec = BenchmarkSpec("toy", [
    ...     TransactionType("a", 0.5, ServiceTimeModel(1e-3, 2e-3)),
    ...     TransactionType("b", 0.5, ServiceTimeModel(2e-3, 4e-3))])
    >>> round(spec.combined_mean_seconds(), 6)
    0.0015
    """

    def __init__(self, name: str, types: Sequence[TransactionType]):
        if not types:
            raise ValueError("benchmark needs at least one type")
        total = sum(t.mix_weight for t in types)
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.name = name
        self.types: Tuple[TransactionType, ...] = tuple(types)
        self._cumulative: List[float] = []
        acc = 0.0
        for txn_type in self.types:
            acc += txn_type.mix_weight / total
            self._cumulative.append(acc)
        self._by_name = {t.name: t for t in self.types}

    def type_named(self, name: str) -> TransactionType:
        return self._by_name[name]

    def choose_type(self, rng: random.Random) -> TransactionType:
        """Draw a type according to the mix.

        ``bisect_left`` finds the first cumulative edge >= u, which is
        exactly the first type the original linear walk would accept
        (``u <= edge``); the clamp covers a draw beyond the last edge
        when the edges sum slightly under 1.0.
        """
        u = rng.random()
        index = bisect_left(self._cumulative, u)
        types = self.types
        return types[index] if index < len(types) else types[-1]

    def mix_fraction(self, name: str) -> float:
        total = sum(t.mix_weight for t in self.types)
        return self._by_name[name].mix_weight / total

    def combined_mean_seconds(self, freq_ghz: Optional[float] = None) -> float:
        """Mix-weighted mean execution time at ``freq_ghz`` (ref freq if None)."""
        mean = sum(self.mix_fraction(t.name) * t.service.mean_seconds
                   for t in self.types)
        if freq_ghz is None:
            return mean
        ref = self.types[0].service.ref_freq_ghz
        return mean * ref / freq_ghz

    def peak_throughput(self, workers: int,
                        freq_ghz: Optional[float] = None) -> float:
        """Saturation throughput (txn/s) of ``workers`` single-core workers.

        The paper expresses its load levels as fractions of the
        measured peak (Section 6.1); the reproduction derives peak from
        the service-time model the same way.
        """
        return workers / self.combined_mean_seconds(freq_ghz)
