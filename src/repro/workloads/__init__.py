"""Benchmark workloads: TPC-C, TPC-E, arrivals, and load traces.

Each benchmark supplies, per transaction type:

* a **functional implementation** that really executes against the
  in-memory storage engine (used by tests/examples to check integrity);
* a **service-time model** calibrated to the execution-time table the
  paper reports (Figure 3): a lognormal (or lognormal+spike) draw of
  *work* in giga-cycles, so simulated duration scales as ``work / f``
  with core frequency exactly like the paper's measurements do;
* its share of the benchmark **mix**.

Also here: the open-loop request generator with uniform interarrival
times (Section 6.1) and the World Cup-style time-varying load trace
(Section 6.4).
"""

from repro.workloads.base import (
    BenchmarkSpec, ServiceTimeModel, TransactionType, fit_lognormal,
)
from repro.workloads.arrivals import OpenLoopGenerator, RateSchedule
from repro.workloads.traces import scale_trace, synthesize_worldcup_trace
from repro.workloads import tpcc, tpce, ycsb

__all__ = [
    "BenchmarkSpec", "ServiceTimeModel", "TransactionType", "fit_lognormal",
    "OpenLoopGenerator", "RateSchedule",
    "scale_trace", "synthesize_worldcup_trace",
    "tpcc", "tpce", "ycsb",
]
