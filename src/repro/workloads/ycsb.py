"""YCSB-style key-value workload.

The paper's conclusion (Section 8) singles out key-value stores as
another natural POLARIS target: short, non-preemptive units of work.
This module provides the standard YCSB core workloads A-F over the
in-memory storage engine, with Zipfian/latest request distributions and
calibrated service-time models, so the harness can drive POLARIS
against a key-value workload exactly as it does TPC-C/TPC-E.

Core workload mixes (Cooper et al., SoCC 2010):

=====  ==========================  =========================
 W      Operations                  Request distribution
=====  ==========================  =========================
 A      50% read / 50% update       zipfian
 B      95% read / 5% update        zipfian
 C      100% read                   zipfian
 D      95% read / 5% insert        latest
 E      95% scan / 5% insert        zipfian (scan start)
 F      50% read / 50% RMW          zipfian
=====  ==========================  =========================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.db.storage.database import Database
from repro.workloads.base import BenchmarkSpec, ServiceTimeModel, TransactionType

#: Operation service times at the 2.8 GHz reference: (mean s, p95 s).
#: Reads/updates sit at the "0.06 ms" end of the paper's spectrum;
#: scans of ~50 records cost roughly one TPC-C Payment.
OPERATION_CALIBRATION = {
    "Read":   (60e-6, 150e-6),
    "Update": (85e-6, 220e-6),
    "Insert": (95e-6, 250e-6),
    "Scan":   (650e-6, 1700e-6),
    "RMW":    (150e-6, 390e-6),
}

#: workload letter -> {operation: weight percent}.
CORE_WORKLOAD_MIXES = {
    "a": {"Read": 50, "Update": 50},
    "b": {"Read": 95, "Update": 5},
    "c": {"Read": 100},
    "d": {"Read": 95, "Insert": 5},
    "e": {"Scan": 95, "Insert": 5},
    "f": {"Read": 50, "RMW": 50},
}

FIELD_COUNT = 10
DEFAULT_SCAN_LENGTH = 50


@dataclass
class YcsbConfig:
    """Loader/access parameters."""

    record_count: int = 1000
    zipfian_theta: float = 0.99
    scan_max_length: int = DEFAULT_SCAN_LENGTH
    field_length: int = 10  # characters per field value


class ZipfianGenerator:
    """Zipfian-distributed integers in [0, n), skew ``theta``.

    The standard Gray et al. rejection-free construction used by the
    YCSB client: heavy skew toward low ranks, theta = 0.99 by default.
    """

    def __init__(self, n: int, theta: float = 0.99):
        if n < 1:
            raise ValueError("need at least one item")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) \
            / (1.0 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / i ** theta for i in range(1, n + 1))

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0)
                   ** self._alpha)


class LatestGenerator:
    """The YCSB 'latest' distribution: skewed toward recent inserts."""

    def __init__(self, initial_count: int, theta: float = 0.99):
        self.count = initial_count
        self._zipf = ZipfianGenerator(max(1, initial_count), theta)

    def grew_to(self, count: int) -> None:
        if count > self.count:
            self.count = count
            self._zipf = ZipfianGenerator(count, self._zipf.theta)

    def next(self, rng: random.Random) -> int:
        offset = self._zipf.next(rng)
        return max(0, self.count - 1 - offset)


# ----------------------------------------------------------------------
# Schema + loader
# ----------------------------------------------------------------------
def _key(i: int) -> str:
    return f"user{i:012d}"


def _columns() -> List[str]:
    return ["y_id"] + [f"field{i}" for i in range(FIELD_COUNT)]


def create_schema(db: Database) -> None:
    table = db.create_table("usertable", _columns(), ("y_id",))
    table.create_index("by_key", ("y_id",), unique=True, ordered=True)


def _row(key: str, rng: random.Random, config: YcsbConfig) -> Dict:
    row = {"y_id": key}
    for i in range(FIELD_COUNT):
        row[f"field{i}"] = "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz")
            for _ in range(config.field_length))
    return row


def load(db: Database, config: YcsbConfig, rng: random.Random) -> None:
    """Insert the initial ``record_count`` rows."""
    batch = 200
    for start in range(0, config.record_count, batch):
        with db.transaction() as txn:
            for i in range(start, min(start + batch, config.record_count)):
                txn.insert("usertable", _row(_key(i), rng, config))
    db.log.force()


def build_database(config: Optional[YcsbConfig] = None,
                   seed: int = 0) -> Database:
    config = config or YcsbConfig()
    db = Database()
    create_schema(db)
    load(db, config, random.Random(seed))
    return db


# ----------------------------------------------------------------------
# Operation state + bodies
# ----------------------------------------------------------------------
class YcsbState:
    """Shared mutable access state (insert counter, key choosers)."""

    def __init__(self, config: YcsbConfig, distribution: str = "zipfian"):
        self.config = config
        self.record_count = config.record_count
        self.distribution = distribution
        self._zipf = ZipfianGenerator(config.record_count,
                                      config.zipfian_theta)
        self._latest = LatestGenerator(config.record_count,
                                       config.zipfian_theta)

    def choose_key(self, rng: random.Random) -> str:
        if self.distribution == "latest":
            return _key(self._latest.next(rng))
        if self.distribution == "uniform":
            return _key(rng.randrange(self.record_count))
        return _key(self._zipf.next(rng))

    def next_insert_key(self) -> str:
        key = _key(self.record_count)
        self.record_count += 1
        self._latest.grew_to(self.record_count)
        return key


def op_read(db: Database, rng: random.Random, state: YcsbState,
            now: float = 0.0) -> Dict:
    key = state.choose_key(rng)
    with db.transaction() as txn:
        row = txn.get_or_none("usertable", (key,))
        return {"key": key, "found": row is not None}


def op_update(db: Database, rng: random.Random, state: YcsbState,
              now: float = 0.0) -> Dict:
    key = state.choose_key(rng)
    field = f"field{rng.randrange(FIELD_COUNT)}"
    value = "".join(rng.choice("0123456789") for _ in range(10))
    with db.transaction() as txn:
        if txn.get_or_none("usertable", (key,), for_update=True) is None:
            return {"key": key, "found": False}
        txn.update("usertable", (key,), {field: value})
        return {"key": key, "found": True, "field": field}


def op_insert(db: Database, rng: random.Random, state: YcsbState,
              now: float = 0.0) -> Dict:
    key = state.next_insert_key()
    with db.transaction() as txn:
        txn.insert("usertable", _row(key, rng, state.config))
        return {"key": key}


def op_scan(db: Database, rng: random.Random, state: YcsbState,
            now: float = 0.0) -> Dict:
    start_key = state.choose_key(rng)
    length = rng.randint(1, state.config.scan_max_length)
    with db.transaction() as txn:
        rows = []
        for row in txn.range_scan("usertable", "by_key", (start_key,),
                                  None):
            rows.append(row["y_id"])
            if len(rows) >= length:
                break
        return {"start": start_key, "scanned": len(rows)}


def op_read_modify_write(db: Database, rng: random.Random,
                         state: YcsbState, now: float = 0.0) -> Dict:
    key = state.choose_key(rng)
    field = f"field{rng.randrange(FIELD_COUNT)}"
    with db.transaction() as txn:
        row = txn.get_or_none("usertable", (key,), for_update=True)
        if row is None:
            return {"key": key, "found": False}
        txn.update("usertable", (key,),
                   {field: row[field][::-1]})  # read, transform, write
        return {"key": key, "found": True}


OPERATION_BODIES = {
    "Read": op_read,
    "Update": op_update,
    "Insert": op_insert,
    "Scan": op_scan,
    "RMW": op_read_modify_write,
}


# ----------------------------------------------------------------------
# Spec construction
# ----------------------------------------------------------------------
#: Memoized body-less specs by workload letter (immutable and
#: stateless; see tpcc.make_spec).
_BODILESS_SPECS: Dict[str, BenchmarkSpec] = {}


def make_spec(workload: str = "a",
              include_bodies: bool = True) -> BenchmarkSpec:
    """BenchmarkSpec for YCSB core workload ``a``..``f``."""
    letter = workload.lower()
    if not include_bodies:
        cached = _BODILESS_SPECS.get(letter)
        if cached is not None:
            return cached
    mix = CORE_WORKLOAD_MIXES.get(letter)
    if mix is None:
        raise ValueError(
            f"unknown YCSB workload {workload!r}; "
            f"choose from {sorted(CORE_WORKLOAD_MIXES)}")
    types = []
    for op, weight in mix.items():
        mean_s, p95_s = OPERATION_CALIBRATION[op]
        body = OPERATION_BODIES[op] if include_bodies else None
        types.append(TransactionType(op, float(weight),
                                     ServiceTimeModel(mean_s, p95_s), body))
    spec = BenchmarkSpec(f"ycsb-{letter}", types)
    if not include_bodies:
        _BODILESS_SPECS[letter] = spec
    return spec


def request_distribution(workload: str) -> str:
    """The YCSB request distribution for a core workload letter."""
    return "latest" if workload.lower() == "d" else "zipfian"
