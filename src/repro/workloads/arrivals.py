"""Open-loop request generation.

The paper changes Shore-Kits from closed-loop to open-loop so a mean
offered load can be specified per experiment: "Request interarrival
delays are chosen randomly from a uniform distribution with the mean
determined by the target request rate, a minimum of zero, and a maximum
of twice the mean.  Thus, the actual instantaneous request rate
fluctuates randomly around the target." (Section 6.1).

:class:`OpenLoopGenerator` reproduces exactly that: interarrival times
``~ Uniform(0, 2/rate)``.  The rate may be constant or time-varying via
a :class:`RateSchedule` (used by the World Cup trace experiment, which
"sets a new target rate every second", Section 6.4).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.sim.engine import Simulator


class RateSchedule:
    """Piecewise-constant target request rate.

    ``rates[i]`` applies during ``[i * step, (i+1) * step)``; beyond the
    end of the list the last rate persists.
    """

    def __init__(self, rates: Sequence[float], step_seconds: float = 1.0):
        if not rates:
            raise ValueError("rate schedule cannot be empty")
        if any(r < 0 for r in rates):
            raise ValueError("rates cannot be negative")
        if step_seconds <= 0:
            raise ValueError("step must be positive")
        self.rates: List[float] = list(rates)
        self.step_seconds = step_seconds

    def rate_at(self, now: float) -> float:
        index = int(now / self.step_seconds)
        if index < 0:
            index = 0
        if index >= len(self.rates):
            index = len(self.rates) - 1
        return self.rates[index]

    @property
    def duration(self) -> float:
        return len(self.rates) * self.step_seconds


class OpenLoopGenerator:
    """Generates request arrivals at a (possibly time-varying) target rate.

    ``on_arrival(now)`` is called at each arrival instant; the callback
    builds and routes the actual request (see the server layer).  The
    generator is started with :meth:`start` and stops on :meth:`stop`
    or when the simulator's run window ends.
    """

    __slots__ = ("sim", "_rate", "_on_arrival", "_rng", "_random",
                 "_schedule", "_running", "generated")

    def __init__(self, sim: Simulator, rate: Callable[[float], float],
                 on_arrival: Callable[[float], None], rng: random.Random):
        self.sim = sim
        self._rate = rate
        self._on_arrival = on_arrival
        self._rng = rng
        #: Hot-path bindings: one arrival costs one unit draw and one
        #: schedule; binding the methods here keeps :meth:`_fire` free
        #: of attribute chains.
        self._random = rng.random
        self._schedule = sim.schedule
        self._running = False
        self.generated = 0

    @classmethod
    def constant(cls, sim: Simulator, rate: float,
                 on_arrival: Callable[[float], None],
                 rng: random.Random) -> "OpenLoopGenerator":
        """Generator with a fixed target rate (requests/second)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return cls(sim, lambda _now: rate, on_arrival, rng)

    @classmethod
    def scheduled(cls, sim: Simulator, schedule: RateSchedule,
                  on_arrival: Callable[[float], None],
                  rng: random.Random) -> "OpenLoopGenerator":
        """Generator following a :class:`RateSchedule`."""
        return cls(sim, schedule.rate_at, on_arrival, rng)

    # ------------------------------------------------------------------
    def start(self, delay: float = 0.0) -> None:
        if self._running:
            raise RuntimeError("generator already running")
        self._running = True
        self.sim.schedule(delay + self._next_gap(), self._fire)

    def stop(self) -> None:
        self._running = False

    def _next_gap(self) -> float:
        """Uniform(0, 2/rate) interarrival; a short poll when the rate
        is zero.

        The draw is a *unit* draw scaled at fire time:
        ``uniform(0, 2/rate)`` is ``(2/rate) * random()`` exactly (the
        stdlib computes ``a + (b - a) * random()`` with ``a = 0``), so
        the sequence is bit-identical whether the stream is batched or
        plain and whatever the instantaneous rate is.
        """
        rate = self._rate(self.sim.now)
        if rate <= 0:
            # Zero-rate stretch: poll again shortly rather than dying.
            return 0.05
        return (2.0 / rate) * self._random()

    def _fire(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        rate = self._rate(now)
        if rate > 0:
            self.generated += 1
            self._on_arrival(now)
            gap = (2.0 / rate) * self._random()
        else:
            gap = 0.05
        self._schedule(gap, self._fire)
