"""Time-varying load traces (the World Cup experiment, Section 6.4).

The paper modulates the TPC-C target request rate once per second
following the *normalized* request rate of the 1998 World Cup web trace
(Arlitt & Jin), sweeping between 30% and 90% of the server's peak
throughput over a roughly 300-second window.

The original trace files are not redistributable, so
:func:`synthesize_worldcup_trace` generates a normalized per-second
series with the same qualitative structure seen in the paper's
Figure 10(a): long multi-minute swells and troughs (match start/end
audience movements) overlaid with second-scale jitter and occasional
short bursts.  A user with the real trace can load it with
:func:`load_trace` and obtain identical treatment.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Sequence


def synthesize_worldcup_trace(duration_seconds: int = 300,
                              rng: random.Random = None,
                              seed: int = 1998) -> List[float]:
    """Normalized (0..1) per-second request-rate series.

    Structure: a baseline of two slow sinusoidal swells with different
    periods (so peaks and troughs drift like the paper's timeline),
    plus white jitter and a few short bursts, clamped to [0, 1].
    """
    if duration_seconds < 1:
        raise ValueError("duration must be at least one second")
    if rng is None:
        rng = random.Random(seed)

    # Random phase offsets make each seed a different "day" of the trace.
    phase_a = rng.uniform(0.0, 2.0 * math.pi)
    phase_b = rng.uniform(0.0, 2.0 * math.pi)
    period_a = rng.uniform(110.0, 150.0)   # main swell, ~2 minutes
    period_b = rng.uniform(40.0, 70.0)     # secondary ripple

    # A handful of bursts (kickoff/goal moments) of 5-15 s.
    bursts = []
    for _ in range(max(1, duration_seconds // 90)):
        start = rng.uniform(0, duration_seconds)
        bursts.append((start, start + rng.uniform(5.0, 15.0),
                       rng.uniform(0.2, 0.45)))

    series: List[float] = []
    for t in range(duration_seconds):
        base = 0.5 \
            + 0.32 * math.sin(2.0 * math.pi * t / period_a + phase_a) \
            + 0.14 * math.sin(2.0 * math.pi * t / period_b + phase_b)
        for start, end, lift in bursts:
            if start <= t < end:
                base += lift
        base += rng.gauss(0.0, 0.035)
        series.append(min(1.0, max(0.0, base)))
    return series


def synthesize_diurnal_trace(duration_seconds: int = 300,
                             rng: random.Random = None,
                             seed: int = 2026,
                             peak_rate_scale: float = 1.0) -> List[float]:
    """Per-second request-*rate* series (requests/s) over one synthetic day.

    The fleet experiments (ROADMAP: "a production-scale system serving
    millions of users") need a day-shaped load curve rather than the
    World Cup trace's match-driven swells.  One diurnal cycle --- night
    trough, morning ramp, midday plateau, evening peak, late-night
    fall-off --- is compressed into ``duration_seconds``, overlaid with
    per-second jitter and a few short flash crowds.

    Unlike :func:`synthesize_worldcup_trace` this returns *absolute*
    rates, with the unscaled series peaking near 1 request/s.
    ``peak_rate_scale`` is the fleet tier's "1000x knob": it multiplies
    the whole series uniformly, so a scale of 1000 models a thousand
    users behind every unscaled one.  Because every random draw happens
    before the scale is applied, the normalized *shape* is invariant
    under scaling (``normalize`` of a scaled series equals the unscaled
    one to float rounding) and same-seed series are deterministic ---
    experiments driven by the normalized trace are unchanged while
    reported absolute rates scale.
    """
    if duration_seconds < 1:
        raise ValueError("duration must be at least one second")
    if peak_rate_scale <= 0:
        raise ValueError("peak_rate_scale must be positive")
    if rng is None:
        rng = random.Random(seed)

    # Seeded day-to-day variation: where the commute ramp and evening
    # peak land, and how hard each pushes.
    morning_centre = rng.uniform(0.30, 0.40)
    morning_height = rng.uniform(0.40, 0.55)
    evening_centre = rng.uniform(0.72, 0.82)
    evening_height = rng.uniform(0.75, 0.95)
    ripple_phase = rng.uniform(0.0, 2.0 * math.pi)

    # A few flash crowds (launches, pushes) of 3-10 s.
    bursts = []
    for _ in range(max(1, duration_seconds // 120)):
        start = rng.uniform(0.15 * duration_seconds, duration_seconds)
        bursts.append((start, start + rng.uniform(3.0, 10.0),
                       rng.uniform(0.10, 0.25)))

    series: List[float] = []
    for t in range(duration_seconds):
        x = t / duration_seconds  # fraction of the compressed day
        value = 0.08  # night trough floor
        value += morning_height * math.exp(-((x - morning_centre) / 0.13) ** 2)
        value += evening_height * math.exp(-((x - evening_centre) / 0.10) ** 2)
        value += 0.03 * math.sin(6.0 * math.pi * x + ripple_phase)
        for start, end, lift in bursts:
            if start <= t < end:
                value += lift
        value += rng.gauss(0.0, 0.02)
        series.append(max(0.02, value) * peak_rate_scale)
    return series


def load_trace(lines: Iterable[str]) -> List[float]:
    """Parse a one-number-per-line request-count trace and normalize it.

    Blank lines and ``#`` comments are ignored.  The result is scaled to
    [0, 1] by the observed min/max, matching how the paper normalizes
    the World Cup counts before mapping them onto its load range.
    """
    counts: List[float] = []
    for line in lines:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        counts.append(float(text))
    if not counts:
        raise ValueError("trace contains no samples")
    return normalize(counts)


def normalize(values: Sequence[float]) -> List[float]:
    """Scale a series to [0, 1] by its min/max (constant series -> 0.5)."""
    low, high = min(values), max(values)
    if high <= low:
        return [0.5] * len(values)
    span = high - low
    return [(v - low) / span for v in values]


def scale_trace(normalized: Sequence[float], low_rate: float,
                high_rate: float) -> List[float]:
    """Map a normalized series onto ``[low_rate, high_rate]`` requests/s.

    The paper maps the normalized World Cup fluctuations onto 30%..90%
    of the measured peak TPC-C throughput (6400..19440 requests/s on
    its testbed).
    """
    if not 0 <= low_rate <= high_rate:
        raise ValueError("need 0 <= low_rate <= high_rate")
    bad = [v for v in normalized if not 0.0 <= v <= 1.0]
    if bad:
        raise ValueError(f"normalized values outside [0,1]: {bad[:3]}...")
    return [low_rate + v * (high_rate - low_rate) for v in normalized]
