"""TPC-E-style workload: schema, loader, ten functional request types.

The paper's TPC-E experiment (Section 6.2.1) defines ten POLARIS
workloads, one per TPC-E request type, with mean execution times
ranging from 0.06 to 2.3 milliseconds at peak frequency.  The TPC-E
specification's full schema (33 tables) is far beyond what the
experiment exercises; this module implements a compact broker/trading
schema with the ten canonical request types, calibrated so the mix's
execution-time range matches the paper's 0.06--2.3 ms span and each
type's tail ratio is in the 2.5--3.5x band observed for TPC-C.

Mix weights follow the TPC-E specification's transaction mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.db.storage.database import Database
from repro.workloads.base import BenchmarkSpec, ServiceTimeModel, TransactionType

#: name -> (mix %, mean seconds, p95 seconds) at the 2.8 GHz reference.
#: Mix percentages are the TPC-E spec mix; means span the paper's
#: 0.06-2.3 ms range (Section 6.2.1).
CALIBRATION = {
    "TradeStatus":      (19.0, 60e-6, 170e-6),
    "MarketWatch":      (18.0, 180e-6, 500e-6),
    "SecurityDetail":   (14.0, 150e-6, 420e-6),
    "CustomerPosition": (13.0, 250e-6, 700e-6),
    "TradeOrder":       (10.1, 700e-6, 1960e-6),
    "TradeResult":      (10.0, 1500e-6, 4200e-6),
    "TradeLookup":      (8.0, 1100e-6, 3080e-6),
    "BrokerVolume":     (4.9, 900e-6, 2520e-6),
    "TradeUpdate":      (2.0, 2300e-6, 6440e-6),
    "MarketFeed":       (1.0, 800e-6, 2240e-6),
}

#: Paper Section 6.1: 1000 customers, working days 300, scale factor 500.
PAPER_CUSTOMERS = 1000


@dataclass
class TpceConfig:
    """Loader scale parameters."""

    customers: int = 20
    accounts_per_customer: int = 2
    securities: int = 30
    brokers: int = 5
    initial_trades_per_account: int = 5
    watch_items_per_customer: int = 5


# ----------------------------------------------------------------------
# Schema + loader
# ----------------------------------------------------------------------
def create_schema(db: Database) -> None:
    db.create_table("customer", ("c_id", "c_name", "c_tier"), ("c_id",))
    account = db.create_table(
        "account", ("ca_id", "ca_c_id", "ca_b_id", "ca_balance"), ("ca_id",))
    account.create_index("by_customer", ("ca_c_id", "ca_id"),
                         unique=True, ordered=True)
    db.create_table("broker",
                    ("b_id", "b_name", "b_num_trades", "b_volume"), ("b_id",))
    db.create_table("security", ("s_symb", "s_name", "s_issue"), ("s_symb",))
    db.create_table("last_trade",
                    ("lt_s_symb", "lt_price", "lt_open_price", "lt_vol"),
                    ("lt_s_symb",))
    trade = db.create_table(
        "trade",
        ("t_id", "t_ca_id", "t_s_symb", "t_qty", "t_price", "t_status",
         "t_dts", "t_is_buy", "t_comment"),
        ("t_id",))
    trade.create_index("by_account", ("t_ca_id", "t_id"),
                       unique=True, ordered=True)
    trade.create_index("by_status", ("t_status", "t_id"),
                       unique=True, ordered=True)
    holding = db.create_table("holding",
                              ("h_ca_id", "h_s_symb", "h_qty", "h_avg_price"),
                              ("h_ca_id", "h_s_symb"))
    holding.create_index("by_account", ("h_ca_id", "h_s_symb"),
                         unique=True, ordered=True)
    watch = db.create_table("watch_item", ("wi_c_id", "wi_s_symb"),
                            ("wi_c_id", "wi_s_symb"))
    watch.create_index("by_customer", ("wi_c_id", "wi_s_symb"),
                       unique=True, ordered=True)


def _symbol(i: int) -> str:
    return f"SYM{i:04d}"


def load(db: Database, config: TpceConfig, rng: random.Random) -> None:
    """Populate a schema-created database at the configured scale."""
    with db.transaction() as txn:
        for b_id in range(1, config.brokers + 1):
            txn.insert("broker", {"b_id": b_id, "b_name": f"broker-{b_id}",
                                  "b_num_trades": 0, "b_volume": 0.0})
        for i in range(1, config.securities + 1):
            symb = _symbol(i)
            price = round(rng.uniform(10.0, 500.0), 2)
            txn.insert("security", {"s_symb": symb, "s_name": f"sec-{i}",
                                    "s_issue": "COMMON"})
            txn.insert("last_trade", {"lt_s_symb": symb, "lt_price": price,
                                      "lt_open_price": price, "lt_vol": 0})
    next_trade_id = 1
    for c_id in range(1, config.customers + 1):
        next_trade_id = _load_customer(db, config, rng, c_id, next_trade_id)
    db.log.force()


def _load_customer(db: Database, config: TpceConfig, rng: random.Random,
                   c_id: int, next_trade_id: int) -> int:
    with db.transaction() as txn:
        txn.insert("customer", {"c_id": c_id, "c_name": f"cust-{c_id}",
                                "c_tier": rng.randint(1, 3)})
        symbols = [_symbol(rng.randint(1, config.securities))
                   for _ in range(config.watch_items_per_customer)]
        # sorted: set iteration order is hash-seed dependent for
        # strings, and row insertion order feeds b-tree shape.
        for symb in sorted(set(symbols)):
            txn.insert("watch_item", {"wi_c_id": c_id, "wi_s_symb": symb})
        for slot in range(config.accounts_per_customer):
            ca_id = (c_id - 1) * config.accounts_per_customer + slot + 1
            txn.insert("account", {
                "ca_id": ca_id, "ca_c_id": c_id,
                "ca_b_id": rng.randint(1, config.brokers),
                "ca_balance": round(rng.uniform(1e3, 1e6), 2),
            })
            for _ in range(config.initial_trades_per_account):
                symb = _symbol(rng.randint(1, config.securities))
                qty = rng.choice((100, 200, 500))
                price = round(rng.uniform(10.0, 500.0), 2)
                txn.insert("trade", {
                    "t_id": next_trade_id, "t_ca_id": ca_id,
                    "t_s_symb": symb, "t_qty": qty, "t_price": price,
                    "t_status": "CMPT", "t_dts": 0.0,
                    "t_is_buy": rng.random() < 0.5, "t_comment": "",
                })
                key = (ca_id, symb)
                holding = txn.get_or_none("holding", key)
                if holding is None:
                    txn.insert("holding", {"h_ca_id": ca_id, "h_s_symb": symb,
                                           "h_qty": qty, "h_avg_price": price})
                else:
                    total = holding["h_qty"] + qty
                    avg = (holding["h_avg_price"] * holding["h_qty"]
                           + price * qty) / total
                    txn.update("holding", key,
                               {"h_qty": total, "h_avg_price": avg})
                next_trade_id += 1
    return next_trade_id


# ----------------------------------------------------------------------
# Request-type bodies
# ----------------------------------------------------------------------
class _TradeIds:
    """Monotonic trade-id source shared by order/result bodies."""

    def __init__(self, start: int = 1 << 20):
        self.next_id = start

    def take(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


_trade_ids = _TradeIds()


def trade_order(db: Database, rng: random.Random, config: TpceConfig,
                now: float = 0.0) -> Dict:
    """Submit a new (pending) trade and bump the broker's trade count."""
    ca_id = rng.randint(1, config.customers * config.accounts_per_customer)
    symb = _symbol(rng.randint(1, config.securities))
    with db.transaction() as txn:
        account = txn.get("account", (ca_id,))
        last = txn.get("last_trade", (symb,))
        t_id = _trade_ids.take()
        txn.insert("trade", {
            "t_id": t_id, "t_ca_id": ca_id, "t_s_symb": symb,
            "t_qty": rng.choice((100, 200, 500)),
            "t_price": last["lt_price"], "t_status": "PNDG", "t_dts": now,
            "t_is_buy": rng.random() < 0.5, "t_comment": "",
        })
        broker = txn.get("broker", (account["ca_b_id"],), for_update=True)
        txn.update("broker", (account["ca_b_id"],),
                   {"b_num_trades": broker["b_num_trades"] + 1})
        return {"t_id": t_id, "symbol": symb}


def trade_result(db: Database, rng: random.Random, config: TpceConfig,
                 now: float = 0.0) -> Dict:
    """Complete the oldest pending trade: settle holding and balance."""
    with db.transaction() as txn:
        pending = list(txn.range_scan("trade", "by_status",
                                      ("PNDG", 0), ("PNDG", 1 << 62)))
        if not pending:
            return {"completed": None}
        trade = pending[0]
        t_id, ca_id, symb = trade["t_id"], trade["t_ca_id"], trade["t_s_symb"]
        txn.update("trade", (t_id,), {"t_status": "CMPT"})
        value = trade["t_qty"] * trade["t_price"]
        account = txn.get("account", (ca_id,), for_update=True)
        holding = txn.get_or_none("holding", (ca_id, symb), for_update=True)
        if trade["t_is_buy"]:
            txn.update("account", (ca_id,),
                       {"ca_balance": account["ca_balance"] - value})
            if holding is None:
                txn.insert("holding", {
                    "h_ca_id": ca_id, "h_s_symb": symb,
                    "h_qty": trade["t_qty"], "h_avg_price": trade["t_price"]})
            else:
                total = holding["h_qty"] + trade["t_qty"]
                avg = (holding["h_avg_price"] * holding["h_qty"] + value) / total
                txn.update("holding", (ca_id, symb),
                           {"h_qty": total, "h_avg_price": avg})
        else:
            txn.update("account", (ca_id,),
                       {"ca_balance": account["ca_balance"] + value})
            if holding is not None:
                remaining = holding["h_qty"] - trade["t_qty"]
                if remaining > 0:
                    txn.update("holding", (ca_id, symb), {"h_qty": remaining})
                else:
                    txn.delete("holding", (ca_id, symb))
        last = txn.get("last_trade", (symb,), for_update=True)
        txn.update("last_trade", (symb,),
                   {"lt_vol": last["lt_vol"] + trade["t_qty"],
                    "lt_price": trade["t_price"]})
        return {"completed": t_id, "value": value}


def trade_status(db: Database, rng: random.Random, config: TpceConfig,
                 now: float = 0.0) -> Dict:
    """Read the most recent trades of one account."""
    ca_id = rng.randint(1, config.customers * config.accounts_per_customer)
    with db.transaction() as txn:
        trades = list(txn.range_scan("trade", "by_account",
                                     (ca_id, 0), (ca_id, 1 << 62)))
        recent = trades[-10:]
        return {"ca_id": ca_id, "count": len(recent),
                "statuses": [t["t_status"] for t in recent]}


def trade_lookup(db: Database, rng: random.Random, config: TpceConfig,
                 now: float = 0.0) -> Dict:
    """Read a batch of trades of one account (frame 1 analogue)."""
    ca_id = rng.randint(1, config.customers * config.accounts_per_customer)
    with db.transaction() as txn:
        trades = list(txn.range_scan("trade", "by_account",
                                     (ca_id, 0), (ca_id, 1 << 62)))
        value = sum(t["t_qty"] * t["t_price"] for t in trades)
        return {"ca_id": ca_id, "trades": len(trades), "value": value}


def trade_update(db: Database, rng: random.Random, config: TpceConfig,
                 now: float = 0.0) -> Dict:
    """Annotate a batch of an account's trades (heaviest writer)."""
    ca_id = rng.randint(1, config.customers * config.accounts_per_customer)
    with db.transaction() as txn:
        trades = list(txn.range_scan("trade", "by_account",
                                     (ca_id, 0), (ca_id, 1 << 62)))
        updated = 0
        for trade in trades[:8]:
            txn.update("trade", (trade["t_id"],),
                       {"t_comment": f"upd@{now:.3f}"})
            updated += 1
        return {"ca_id": ca_id, "updated": updated}


def customer_position(db: Database, rng: random.Random, config: TpceConfig,
                      now: float = 0.0) -> Dict:
    """Value a customer's accounts: cash plus marked-to-market holdings."""
    c_id = rng.randint(1, config.customers)
    with db.transaction() as txn:
        accounts = list(txn.range_scan("account", "by_customer",
                                       (c_id, 0), (c_id, 1 << 62)))
        total_cash = sum(a["ca_balance"] for a in accounts)
        total_market = 0.0
        for account in accounts:
            for holding in txn.range_scan(
                    "holding", "by_account",
                    (account["ca_id"], ""), (account["ca_id"], "￿")):
                last = txn.get("last_trade", (holding["h_s_symb"],))
                total_market += holding["h_qty"] * last["lt_price"]
        return {"c_id": c_id, "cash": total_cash, "market": total_market}


def broker_volume(db: Database, rng: random.Random, config: TpceConfig,
                  now: float = 0.0) -> Dict:
    """Aggregate traded volume across a subset of brokers."""
    count = min(3, config.brokers)
    b_ids = rng.sample(range(1, config.brokers + 1), count)
    with db.transaction() as txn:
        volume = 0.0
        trades = 0
        for b_id in sorted(b_ids):
            broker = txn.get("broker", (b_id,))
            volume += broker["b_volume"]
            trades += broker["b_num_trades"]
        return {"brokers": sorted(b_ids), "volume": volume, "trades": trades}


def market_feed(db: Database, rng: random.Random, config: TpceConfig,
                now: float = 0.0) -> Dict:
    """Apply a ticker batch: move last-trade prices of several securities."""
    batch = min(8, config.securities)
    indexes = rng.sample(range(1, config.securities + 1), batch)
    with db.transaction() as txn:
        for i in sorted(indexes):
            symb = _symbol(i)
            last = txn.get("last_trade", (symb,), for_update=True)
            drift = 1.0 + rng.uniform(-0.01, 0.01)
            txn.update("last_trade", (symb,),
                       {"lt_price": round(last["lt_price"] * drift, 2)})
        return {"updated": batch}


def market_watch(db: Database, rng: random.Random, config: TpceConfig,
                 now: float = 0.0) -> Dict:
    """Compute the percent price change across a customer's watch list."""
    c_id = rng.randint(1, config.customers)
    with db.transaction() as txn:
        symbols = [w["wi_s_symb"] for w in txn.range_scan(
            "watch_item", "by_customer", (c_id, ""), (c_id, "￿"))]
        if not symbols:
            return {"c_id": c_id, "pct_change": 0.0}
        old_value = new_value = 0.0
        for symb in sorted(symbols):
            last = txn.get("last_trade", (symb,))
            old_value += last["lt_open_price"]
            new_value += last["lt_price"]
        pct = 100.0 * (new_value - old_value) / old_value
        return {"c_id": c_id, "pct_change": pct}


def security_detail(db: Database, rng: random.Random, config: TpceConfig,
                    now: float = 0.0) -> Dict:
    """Read one security's descriptive and market data."""
    symb = _symbol(rng.randint(1, config.securities))
    with db.transaction() as txn:
        security = txn.get("security", (symb,))
        last = txn.get("last_trade", (symb,))
        return {"symbol": symb, "name": security["s_name"],
                "price": last["lt_price"], "volume": last["lt_vol"]}


TRANSACTION_BODIES = {
    "TradeStatus": trade_status,
    "MarketWatch": market_watch,
    "SecurityDetail": security_detail,
    "CustomerPosition": customer_position,
    "TradeOrder": trade_order,
    "TradeResult": trade_result,
    "TradeLookup": trade_lookup,
    "BrokerVolume": broker_volume,
    "TradeUpdate": trade_update,
    "MarketFeed": market_feed,
}


#: Memoized body-less spec (immutable and stateless; see tpcc.make_spec).
_BODILESS_SPEC: "BenchmarkSpec | None" = None


def make_spec(include_bodies: bool = True) -> BenchmarkSpec:
    """The TPC-E-style benchmark spec (ten types, paper Section 6.2.1)."""
    global _BODILESS_SPEC
    if not include_bodies and _BODILESS_SPEC is not None:
        return _BODILESS_SPEC
    types = []
    for name, (weight, mean_s, p95_s) in CALIBRATION.items():
        body = TRANSACTION_BODIES[name] if include_bodies else None
        types.append(TransactionType(
            name, weight, ServiceTimeModel(mean_s, p95_s), body))
    spec = BenchmarkSpec("tpce", types)
    if not include_bodies:
        _BODILESS_SPEC = spec
    return spec


def build_database(config: Optional[TpceConfig] = None,
                   seed: int = 0) -> Database:
    """Create, load, and return a TPC-E database."""
    config = config or TpceConfig()
    db = Database()
    create_schema(db)
    load(db, config, random.Random(seed))
    return db


def check_consistency(db: Database, config: TpceConfig) -> List[str]:
    """Invariants the request mix must preserve; returns violations."""
    problems: List[str] = []
    holding_tbl = db.table("holding")
    for holding in holding_tbl.scan_all():
        if holding["h_qty"] <= 0:
            problems.append(f"holding {holding} has non-positive quantity")
    trade_tbl = db.table("trade")
    for trade in trade_tbl.scan_all():
        if trade["t_status"] not in ("PNDG", "CMPT"):
            problems.append(f"trade {trade['t_id']} bad status")
    return problems
