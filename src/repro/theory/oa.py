"""Optimal Available (OA): online preemptive speed scaling (Section 4.3).

At each arrival, OA runs YDS on the instance consisting of all pending
work with arrival times reset to "now".  Because every job in that
instance shares the same arrival, the YDS plan collapses to a staircase:
sort pending jobs by deadline; the first critical interval is the prefix
maximizing ``(sum of prefix work) / (prefix deadline - now)``; run that
prefix in EDF order at exactly that density, then recurse on the rest.
Bansal, Kimbrel & Pruhs showed OA is ``alpha^alpha``-competitive
against YDS.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.theory.model import ProblemInstance, Schedule, Segment

_TOL = 1e-12

#: Width used to materialize an "instantaneous" completion.  When a
#: pending job's deadline sits at/behind the plan start, the idealized
#: model runs it at infinite speed for zero time; ``Segment`` cannot
#: represent a zero-width run, so we clamp to this sliver (well inside
#: ``Schedule.check_feasible``'s 1e-6 relative tolerance) at the finite
#: speed that completes the remaining work.
_INSTANT = 1e-9


def _staircase_plan(now: float, pending: List[Tuple[float, float, int]]
                    ) -> List[Tuple[float, List[Tuple[float, float, int]]]]:
    """OA's plan at time ``now``.

    ``pending`` holds (deadline, remaining_work, job_id).  Returns a
    list of (speed, group) entries in execution order; each group's
    jobs are already EDF-sorted.
    """
    jobs = sorted(pending)
    plan: List[Tuple[float, List[Tuple[float, float, int]]]] = []
    start = now
    index = 0
    while index < len(jobs):
        best_density = -1.0
        best_end = index
        acc = 0.0
        for k in range(index, len(jobs)):
            acc += jobs[k][1]
            horizon = jobs[k][0] - start
            if horizon <= _TOL:
                # Deadline at/behind the current plan start: infinite
                # density in the idealized model.  Deadlines ascend, so
                # this can only trigger at k == index and the group is
                # that single job, completed instantaneously by
                # ``oa_schedule``.
                best_density = float("inf")
                best_end = k
                break
            density = acc / horizon
            if density > best_density + _TOL:
                best_density = density
                best_end = k
        group = jobs[index:best_end + 1]
        plan.append((best_density, group))
        # A behind-the-start deadline must not move the staircase start
        # backwards — that would inflate every later group's horizon.
        start = max(start, jobs[best_end][0])
        index = best_end + 1
    return plan


def oa_schedule(instance: ProblemInstance,
                record_speeds: bool = False) -> Schedule:
    """Simulate OA on ``instance`` and return its schedule.

    The simulation advances from arrival to arrival, executing the
    current staircase plan in between.  Speeds in the idealized model
    are unbounded, so every deadline is met (Section 4.1).
    """
    events = sorted({j.arrival for j in instance.jobs})
    remaining: Dict[int, float] = {}
    deadlines: Dict[int, float] = {j.job_id: j.deadline for j in instance.jobs}
    arrived = set()
    segments: List[Segment] = []

    for event_index, now in enumerate(events):
        for job in instance.jobs:
            if abs(job.arrival - now) <= _TOL and job.job_id not in arrived:
                arrived.add(job.job_id)
                remaining[job.job_id] = job.work
        next_arrival = events[event_index + 1] \
            if event_index + 1 < len(events) else float("inf")

        pending = [(deadlines[job_id], rem, job_id)
                   for job_id, rem in remaining.items() if rem > _TOL]
        plan = _staircase_plan(now, pending)
        cursor = now
        for speed, group in plan:
            if cursor >= next_arrival - _TOL:
                break
            for _deadline, _rem, job_id in group:
                rem = remaining[job_id]
                if rem <= _TOL:
                    continue
                if not math.isfinite(speed):
                    # Instantaneous completion: the job is due *now*, so
                    # it finishes in (idealized) zero time and cannot be
                    # cut off by the next arrival.  Without this branch
                    # the segment below would have zero width and the
                    # work would be silently dropped.  The speed comes
                    # from the *rounded* width (at large ``cursor`` the
                    # float sum absorbs part of the sliver) so the
                    # segment carries exactly ``rem`` work.
                    end = cursor + _INSTANT
                    if end <= cursor:
                        end = math.nextafter(cursor, math.inf)
                    segments.append(Segment(
                        cursor, end, rem / (end - cursor), job_id))
                    remaining[job_id] = 0.0
                    cursor = end
                    continue
                finish = cursor + rem / speed
                end = min(finish, next_arrival)
                if end > cursor + _TOL:
                    segments.append(Segment(cursor, end, speed, job_id))
                    remaining[job_id] = max(0.0, rem - speed * (end - cursor))
                    cursor = end
                if cursor >= next_arrival - _TOL:
                    break
    return Schedule(_coalesce(segments))


def _coalesce(segments: List[Segment]) -> List[Segment]:
    out: List[Segment] = []
    for seg in sorted(segments, key=lambda s: s.start):
        if out:
            last = out[-1]
            if last.job_id == seg.job_id \
                    and abs(last.speed - seg.speed) <= 1e-9 \
                    and abs(last.end - seg.start) <= 1e-9:
                out[-1] = Segment(last.start, seg.end, last.speed, last.job_id)
                continue
        out.append(seg)
    return out
