"""Idealized POLARIS under the standard model (Sections 4.4-4.6).

The algorithm analyzed in the paper's theory section: online,
**non-preemptive**, executes in EDF order, knows loads exactly, and may
pick any continuous speed.  On every arrival and completion it runs the
continuous analogue of SetProcessorFreq: the minimum speed at which the
running transaction *and* every EDF-ordered queued transaction finish
by their deadlines ---

    s = max over EDF prefixes P of
        (remaining(running) + sum of P's loads) / (deadline(P's last) - now)

(the running transaction's own deadline contributes the first term with
an empty prefix).  Because the model's speeds are unbounded, every
deadline is met; only energy differs between algorithms.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

from repro.theory.model import ProblemInstance, Schedule, Segment

_TOL = 1e-12
_EPS_DENOM = 1e-15


def _required_speed(now: float, running_rem: float, running_deadline: float,
                    queue: List[Tuple[float, int, float]]) -> float:
    """Minimum speed meeting all deadlines (continuous Figure 2)."""
    speed = 0.0
    if running_rem > _TOL:
        horizon = max(running_deadline - now, _EPS_DENOM)
        speed = running_rem / horizon
    cumulative = running_rem
    for deadline, _job_id, work in sorted(queue):
        cumulative += work
        horizon = max(deadline - now, _EPS_DENOM)
        speed = max(speed, cumulative / horizon)
    return speed


def polaris_ideal_schedule(instance: ProblemInstance) -> Schedule:
    """Simulate idealized POLARIS; returns its (non-preemptive) schedule."""
    arrivals = sorted(instance.jobs, key=lambda j: (j.arrival, j.deadline,
                                                    j.job_id))
    segments: List[Segment] = []

    # queue entries: (deadline, job_id, work)
    queue: List[Tuple[float, int, float]] = []
    running_id: Optional[int] = None
    running_rem = 0.0
    running_deadline = 0.0
    speed = 0.0
    now = arrivals[0].arrival
    last_change = now
    next_arrival_index = 0

    def emit_progress(until: float) -> None:
        nonlocal running_rem, last_change
        if running_id is not None and until > last_change + _TOL \
                and speed > _TOL:
            segments.append(Segment(last_change, until, speed, running_id))
            running_rem = max(0.0, running_rem - speed * (until - last_change))
        last_change = until

    def dispatch_next(at: float) -> None:
        nonlocal running_id, running_rem, running_deadline
        if queue:
            deadline, job_id, work = heapq.heappop(queue)
            running_id = job_id
            running_rem = work
            running_deadline = deadline
        else:
            running_id = None
            running_rem = 0.0

    while True:
        # Next event: arrival or completion of the running job.
        arrival_time = arrivals[next_arrival_index].arrival \
            if next_arrival_index < len(arrivals) else float("inf")
        if running_id is not None and speed > _TOL:
            completion_time = now + running_rem / speed
        else:
            completion_time = float("inf")
        next_time = min(arrival_time, completion_time)
        if math.isinf(next_time):
            break
        emit_progress(next_time)
        now = next_time

        if completion_time <= arrival_time + _TOL \
                and running_id is not None and running_rem <= 1e-9:
            # Completion event (Figure 2's completion trigger).
            dispatch_next(now)
        if abs(now - arrival_time) <= _TOL:
            # Arrival event(s): enqueue everything arriving now.
            while next_arrival_index < len(arrivals) and \
                    arrivals[next_arrival_index].arrival <= now + _TOL:
                job = arrivals[next_arrival_index]
                heapq.heappush(queue, (job.deadline, job.job_id, job.work))
                next_arrival_index += 1
            if running_id is None:
                dispatch_next(now)
        speed = _required_speed(now, running_rem, running_deadline, queue)
        last_change = now

    return Schedule(_coalesce(segments))


def _coalesce(segments: List[Segment]) -> List[Segment]:
    out: List[Segment] = []
    for seg in sorted(segments, key=lambda s: s.start):
        if out:
            last = out[-1]
            if last.job_id == seg.job_id \
                    and abs(last.speed - seg.speed) <= 1e-9 \
                    and abs(last.end - seg.start) <= 1e-9:
                out[-1] = Segment(last.start, seg.end, last.speed, last.job_id)
                continue
        out.append(seg)
    return out
