"""Problem-instance generators for the Section 4 analysis.

* :func:`random_instance` --- arbitrary instances: uniform arrivals,
  lognormal-ish loads, uniform laxities.
* :func:`random_agreeable_instance` --- agreeable instances (earlier
  arrival implies no-later deadline), the class on which Theorem 4.3
  shows POLARIS behaves identically to OA.
* :func:`adversarial_pair` --- the Section 4.6 two-job construction
  exhibiting POLARIS's non-preemption penalty: a maximum-load job with
  a late deadline arrives just before a minimum-load job with a very
  tight deadline, forcing non-preemptive POLARIS to push *both* loads
  through the tight deadline.
"""

from __future__ import annotations

import random
from typing import List

from repro.theory.model import Job, ProblemInstance


def random_instance(n: int, rng: random.Random, horizon: float = 100.0,
                    min_work: float = 0.5, max_work: float = 5.0,
                    min_laxity: float = 1.0,
                    max_laxity: float = 20.0) -> ProblemInstance:
    """Arbitrary instance: n jobs with independent windows and loads."""
    if n < 1:
        raise ValueError("need at least one job")
    jobs: List[Job] = []
    for job_id in range(1, n + 1):
        arrival = rng.uniform(0.0, horizon)
        work = rng.uniform(min_work, max_work)
        laxity = rng.uniform(min_laxity, max_laxity)
        jobs.append(Job(job_id, arrival, arrival + laxity, work))
    return ProblemInstance(jobs)


def random_agreeable_instance(n: int, rng: random.Random,
                              horizon: float = 100.0,
                              min_work: float = 0.5, max_work: float = 5.0,
                              min_laxity: float = 1.0,
                              max_laxity: float = 20.0) -> ProblemInstance:
    """Agreeable instance: deadlines ordered like arrivals.

    Arrivals are sorted and deadlines made monotone by running-max (plus
    a small separator so the ordering is strict), which preserves
    agreeability under any pairing of arrivals.
    """
    arrivals = sorted(rng.uniform(0.0, horizon) for _ in range(n))
    jobs: List[Job] = []
    floor_deadline = -float("inf")
    for job_id, arrival in enumerate(arrivals, start=1):
        work = rng.uniform(min_work, max_work)
        deadline = arrival + rng.uniform(min_laxity, max_laxity)
        deadline = max(deadline, floor_deadline + 1e-6)
        floor_deadline = deadline
        jobs.append(Job(job_id, arrival, deadline, work))
    instance = ProblemInstance(jobs)
    assert instance.is_agreeable()
    return instance


def adversarial_pair(w_max: float = 10.0, w_min: float = 0.1,
                     tight_window: float = 1.0,
                     late_deadline: float = 1000.0,
                     epsilon: float = 1e-3) -> ProblemInstance:
    """The Section 4.6 construction.

    Job 1: load ``w_max``, arrives at 0, deadline very late.
    Job 2: load ``w_min``, arrives at ``epsilon``, deadline
    ``epsilon + tight_window``.

    Non-preemptive POLARIS is already running job 1 when job 2 arrives,
    so it must complete *both* loads by job 2's deadline; YDS runs job 2
    alone in the tight window and spreads job 1 over the long horizon.
    The energy ratio approaches ``c^alpha`` with
    ``c = 1 + w_max / w_min``.
    """
    if epsilon <= 0 or tight_window <= 0:
        raise ValueError("epsilon and tight_window must be positive")
    if late_deadline <= epsilon + tight_window:
        raise ValueError("late deadline must dominate the tight window")
    return ProblemInstance([
        Job(1, 0.0, late_deadline, w_max),
        Job(2, epsilon, epsilon + tight_window, w_min),
    ])
