"""The paper's Section 4: speed-scaling theory under the standard model.

In the standard model (Section 4.1), transactions have known loads
``w(t)``, the processor speed is continuous and unbounded, executing a
load-``w`` transaction at speed ``f`` takes ``w/f`` time, and power is
``f^alpha`` for a constant ``alpha > 1``.  Every algorithm meets every
deadline, so only energy is compared.

Implemented here:

* :mod:`repro.theory.model` --- jobs, problem instances, schedules, and
  exact energy/feasibility accounting;
* :mod:`repro.theory.yds` --- the Yao-Demers-Shenker optimal offline
  preemptive algorithm (iterated critical-interval peeling);
* :mod:`repro.theory.oa` --- Optimal Available, the online preemptive
  algorithm that re-runs YDS on the remaining work at each arrival;
* :mod:`repro.theory.polaris_ideal` --- idealized POLARIS: online,
  *non-preemptive*, EDF order, continuous speeds, exact loads --- the
  algorithm analyzed in Lemmas 4.1/4.2 and Theorems 4.3-4.5;
* :mod:`repro.theory.instances` --- generators for agreeable and
  arbitrary instances plus the Section 4.6 adversarial pair.

The theory benches verify the paper's competitive claims empirically:
POLARIS == OA on agreeable instances (Theorem 4.3), OA within
``alpha^alpha`` of YDS, and POLARIS within ``(c*alpha)^alpha`` of YDS
on arbitrary instances (Corollary 4.6).
"""

from repro.theory.model import Job, ProblemInstance, Schedule, Segment
from repro.theory.yds import yds_schedule
from repro.theory.oa import oa_schedule
from repro.theory.avr import avr_schedule
from repro.theory.polaris_ideal import polaris_ideal_schedule
from repro.theory.instances import (
    adversarial_pair, random_agreeable_instance, random_instance,
)
from repro.theory.potential import verify_theorem_4_4

__all__ = [
    "Job", "ProblemInstance", "Schedule", "Segment",
    "yds_schedule", "oa_schedule", "avr_schedule",
    "polaris_ideal_schedule",
    "adversarial_pair", "random_agreeable_instance", "random_instance",
    "verify_theorem_4_4",
]
