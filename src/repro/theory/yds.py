"""Yao-Demers-Shenker (YDS): the optimal offline preemptive algorithm.

Section 4.2: repeatedly find the interval of maximum *density* (summed
load of jobs whose windows it contains, divided by its length), run
those jobs inside it in EDF order at exactly the density, remove the
interval (compressing the remaining jobs' windows by their overlap),
and recurse.

Implementation notes
--------------------
The iteration runs in *compressed* coordinates; for each critical
interval we record its support on the **original** timeline (the
interval's span minus previously removed time).  Densities are
non-increasing across iterations (the classic YDS invariant, asserted
here), so the final speed profile is well defined.  The explicit
schedule is produced by one global preemptive-EDF pass over the speed
profile --- given the YDS profile, EDF feasibly schedules all jobs ---
which keeps the per-interval bookkeeping simple and lets
``Schedule.check_feasible`` verify the result end to end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.theory.model import Job, ProblemInstance, Schedule, Segment

_TOL = 1e-9


class _CurJob:
    __slots__ = ("job_id", "a", "d", "w")

    def __init__(self, job_id: int, a: float, d: float, w: float):
        self.job_id = job_id
        self.a = a
        self.d = d
        self.w = w


def _find_critical(jobs: Sequence[_CurJob]) -> Tuple[float, float, float]:
    """Max-density interval over candidate (arrival, deadline) pairs."""
    starts = sorted({j.a for j in jobs})
    ends = sorted({j.d for j in jobs})
    best: Optional[Tuple[float, float, float]] = None
    for s in starts:
        for e in ends:
            if e <= s + _TOL:
                continue
            work = sum(j.w for j in jobs
                       if j.a >= s - _TOL and j.d <= e + _TOL)
            if work <= 0:
                continue
            density = work / (e - s)
            if best is None or density > best[2] + _TOL:
                best = (s, e, density)
            elif abs(density - best[2]) <= _TOL and (s, e) < (best[0], best[1]):
                best = (s, e, density)
    assert best is not None, "no candidate interval found"
    return best


def _subtract(interval: Tuple[float, float],
              removed: List[Tuple[float, float]]
              ) -> List[Tuple[float, float]]:
    """``interval`` minus the (disjoint, sorted) ``removed`` slots."""
    slots = [interval]
    for rs, re in removed:
        next_slots = []
        for s, e in slots:
            if re <= s + _TOL or rs >= e - _TOL:
                next_slots.append((s, e))
                continue
            if rs > s + _TOL:
                next_slots.append((s, rs))
            if re < e - _TOL:
                next_slots.append((re, e))
        slots = next_slots
    return slots


def _merge(removed: List[Tuple[float, float]],
           new_slots: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    merged = sorted(removed + new_slots)
    out: List[Tuple[float, float]] = []
    for s, e in merged:
        if out and s <= out[-1][1] + _TOL:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out


def _cur_to_orig(x: float, removed: List[Tuple[float, float]],
                 as_start: bool) -> float:
    """Map a compressed coordinate back to the original timeline.

    ``as_start`` picks the side at collapse points: interval starts move
    past removed time, interval ends stay before it.
    """
    for rs, re in removed:  # sorted ascending in original coordinates
        if as_start:
            if x >= rs - _TOL:
                x += re - rs
        else:
            if x > rs + _TOL:
                x += re - rs
    return x


def yds_speed_profile(instance: ProblemInstance
                      ) -> List[Tuple[float, float, float]]:
    """The YDS speed function as (start, end, speed) slots on the
    original timeline, sorted by start, with non-increasing speeds
    across critical intervals (each interval may span several slots)."""
    current = [_CurJob(j.job_id, j.arrival, j.deadline, j.work)
               for j in instance.jobs]
    removed: List[Tuple[float, float]] = []
    profile: List[Tuple[float, float, float]] = []
    last_density = float("inf")
    while current:
        s, e, density = _find_critical(current)
        assert density <= last_density * (1 + 1e-6) + _TOL, \
            f"YDS density increased: {density} after {last_density}"
        last_density = density
        # Original-timeline support of this critical interval.
        orig_s = _cur_to_orig(s, removed, as_start=True)
        orig_e = _cur_to_orig(e, removed, as_start=False)
        slots = _subtract((orig_s, orig_e), removed)
        support = sum(b - a for a, b in slots)
        assert abs(support - (e - s)) <= max(1e-6, 1e-6 * (e - s)), \
            "support length mismatch after decompression"
        for a, b in slots:
            profile.append((a, b, density))
        removed = _merge(removed, slots)
        # Compress the remaining jobs' windows by their overlap with
        # [s, e] (still in the *current* coordinates).
        rest: List[_CurJob] = []
        span = e - s
        for job in current:
            if job.a >= s - _TOL and job.d <= e + _TOL:
                continue  # scheduled inside the critical interval
            na = _compress_point(job.a, s, e, span)
            nd = _compress_point(job.d, s, e, span)
            rest.append(_CurJob(job.job_id, na, nd, job.w))
        current = rest
    profile.sort()
    return profile


def _compress_point(x: float, s: float, e: float, span: float) -> float:
    if x <= s + _TOL:
        return x
    if x >= e - _TOL:
        return x - span
    return s


def _edf_over_profile(instance: ProblemInstance,
                      profile: List[Tuple[float, float, float]]
                      ) -> List[Segment]:
    """Preemptive EDF over the speed profile; returns the segments."""
    remaining = {j.job_id: j.work for j in instance.jobs}
    by_id = {j.job_id: j for j in instance.jobs}
    segments: List[Segment] = []
    for slot_start, slot_end, speed in profile:
        t = slot_start
        while t < slot_end - _TOL:
            ready = [j for j in instance.jobs
                     if j.arrival <= t + _TOL and remaining[j.job_id] > _TOL]
            if not ready:
                # Advance to the next arrival inside the slot.
                future = [j.arrival for j in instance.jobs
                          if j.arrival > t + _TOL
                          and remaining[j.job_id] > _TOL]
                if not future:
                    t = slot_end
                    break
                t = min(min(future), slot_end)
                continue
            job = min(ready, key=lambda j: (j.deadline, j.job_id))
            finish_in = remaining[job.job_id] / speed
            # Run until the job finishes, the slot ends, or a new
            # arrival could preempt.
            future = [j.arrival for j in instance.jobs
                      if j.arrival > t + _TOL and remaining[j.job_id] > _TOL]
            until = min([t + finish_in, slot_end] +
                        ([min(future)] if future else []))
            if until <= t + _TOL:
                until = min(t + finish_in, slot_end)
            segments.append(Segment(t, until, speed, job.job_id))
            remaining[job.job_id] -= speed * (until - t)
            if remaining[job.job_id] < max(1e-9, 1e-9 * by_id[job.job_id].work):
                remaining[job.job_id] = 0.0
            t = until
    return segments


def yds_schedule(instance: ProblemInstance) -> Schedule:
    """The full YDS schedule (speed profile + preemptive EDF packing).

    The returned schedule is validated by the caller via
    :meth:`Schedule.check_feasible`; its energy is the minimum over all
    preemptive schedules (Yao, Demers & Shenker 1995).
    """
    profile = yds_speed_profile(instance)
    segments = _edf_over_profile(instance, profile)
    merged = _coalesce(segments)
    return Schedule(merged)


def _coalesce(segments: List[Segment]) -> List[Segment]:
    """Merge back-to-back segments of the same job and speed."""
    out: List[Segment] = []
    for seg in sorted(segments, key=lambda s: s.start):
        if out:
            last = out[-1]
            if last.job_id == seg.job_id \
                    and abs(last.speed - seg.speed) <= _TOL \
                    and abs(last.end - seg.start) <= _TOL:
                out[-1] = Segment(last.start, seg.end, last.speed,
                                  last.job_id)
                continue
        out.append(seg)
    return out


def yds_energy(instance: ProblemInstance, alpha: float = 3.0) -> float:
    """YDS energy straight from the speed profile (no packing needed)."""
    profile = yds_speed_profile(instance)
    return sum((b - a) * v ** alpha for a, b, v in profile)
