"""Standard-model primitives: jobs, instances, schedules, energy.

All times/speeds are floats; feasibility checks use a relative
tolerance because schedules are built from floating-point densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Default power exponent; alpha ~ 3 corresponds to the classic
#: CMOS dynamic-power model (paper Section 4.1, citing Brooks et al.).
DEFAULT_ALPHA = 3.0

_REL_TOL = 1e-6


@dataclass(frozen=True)
class Job:
    """A standard-model transaction: arrival, deadline, load."""

    job_id: int
    arrival: float
    deadline: float
    work: float

    def __post_init__(self):
        if self.deadline <= self.arrival:
            raise ValueError(
                f"job {self.job_id}: deadline {self.deadline} must be after "
                f"arrival {self.arrival}")
        if self.work <= 0:
            raise ValueError(f"job {self.job_id}: work must be positive")

    @property
    def window(self) -> float:
        return self.deadline - self.arrival

    @property
    def density(self) -> float:
        """The job's own intensity ``w / (d - a)``."""
        return self.work / self.window


class ProblemInstance:
    """A set of jobs (the paper's problem instance P)."""

    def __init__(self, jobs: Sequence[Job]):
        if not jobs:
            raise ValueError("instance needs at least one job")
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids")
        for j in jobs:
            # Job.__post_init__ already rejects deadline <= arrival, but
            # instances can be built from bypass-constructed or
            # deserialized jobs; a zero-width window makes every density
            # (w / (d - a)) undefined, so fail here with a clear error
            # instead of a ZeroDivisionError deep inside OA/AVR.
            if not (j.deadline - j.arrival > 0.0):
                raise ValueError(
                    f"job {j.job_id}: zero-width window "
                    f"[{j.arrival}, {j.deadline}] — deadline must be "
                    f"strictly after arrival")
        self.jobs: Tuple[Job, ...] = tuple(
            sorted(jobs, key=lambda j: (j.arrival, j.deadline, j.job_id)))

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @property
    def total_work(self) -> float:
        return sum(j.work for j in self.jobs)

    @property
    def horizon(self) -> Tuple[float, float]:
        return (min(j.arrival for j in self.jobs),
                max(j.deadline for j in self.jobs))

    def is_agreeable(self) -> bool:
        """Agreeable: earlier arrival implies no-later deadline (S4.5).

        Checked over all pairs: if ``a(ti) < a(tj)`` then
        ``d(ti) <= d(tj)``.
        """
        ordered = sorted(self.jobs, key=lambda j: j.arrival)
        max_deadline_so_far = -float("inf")
        previous_arrival: Optional[float] = None
        for job in ordered:
            if previous_arrival is not None \
                    and job.arrival > previous_arrival \
                    and job.deadline < max_deadline_so_far - 1e-12:
                return False
            max_deadline_so_far = max(max_deadline_so_far, job.deadline)
            previous_arrival = job.arrival
        return True

    def scaled(self, factor: float) -> "ProblemInstance":
        """The instance P' with every load multiplied by ``factor``
        (Theorem 4.5's construction)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ProblemInstance([
            Job(j.job_id, j.arrival, j.deadline, j.work * factor)
            for j in self.jobs])

    def load_extremes(self) -> Tuple[float, float]:
        """(w_min, w_max) over the instance."""
        works = [j.work for j in self.jobs]
        return min(works), max(works)

    def c_factor(self) -> float:
        """The paper's ``c = 1 + w_max / w_min`` (Section 4.5)."""
        w_min, w_max = self.load_extremes()
        return 1.0 + w_max / w_min


@dataclass(frozen=True)
class Segment:
    """Constant-speed execution of one job over ``[start, end)``."""

    start: float
    end: float
    speed: float
    job_id: int

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("segment must have positive length")
        if self.speed <= 0:
            raise ValueError("segment speed must be positive")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work_done(self) -> float:
        return self.speed * self.duration


class Schedule:
    """A speed/job assignment over time; validates against an instance."""

    def __init__(self, segments: Sequence[Segment]):
        self.segments: List[Segment] = sorted(segments,
                                              key=lambda s: (s.start, s.end))

    def energy(self, alpha: float = DEFAULT_ALPHA) -> float:
        """Total energy: sum over segments of ``speed^alpha * duration``."""
        if alpha <= 1:
            raise ValueError("alpha must exceed 1")
        return sum(s.speed ** alpha * s.duration for s in self.segments)

    def max_speed(self) -> float:
        return max((s.speed for s in self.segments), default=0.0)

    def work_by_job(self) -> Dict[int, float]:
        done: Dict[int, float] = {}
        for segment in self.segments:
            done[segment.job_id] = done.get(segment.job_id, 0.0) \
                + segment.work_done
        return done

    # ------------------------------------------------------------------
    def check_feasible(self, instance: ProblemInstance,
                       preemptive: bool = True) -> None:
        """Assert the schedule completes every job within its window.

        Checks: no overlapping segments, each job's segments lie within
        its [arrival, deadline] window, and each job receives exactly
        its work (to relative tolerance).  With ``preemptive=False``,
        additionally asserts each job's execution is one contiguous run.
        """
        by_id = {j.job_id: j for j in instance.jobs}
        prev_end = -float("inf")
        for segment in self.segments:
            assert segment.start >= prev_end - _REL_TOL, \
                f"overlapping segments at {segment.start}"
            prev_end = segment.end
            job = by_id.get(segment.job_id)
            assert job is not None, f"unknown job {segment.job_id}"
            assert segment.start >= job.arrival - _REL_TOL, \
                f"job {job.job_id} runs before arrival"
            assert segment.end <= job.deadline + max(
                _REL_TOL, _REL_TOL * abs(job.deadline)), \
                f"job {job.job_id} runs past deadline " \
                f"({segment.end} > {job.deadline})"
        done = self.work_by_job()
        for job in instance.jobs:
            got = done.get(job.job_id, 0.0)
            assert abs(got - job.work) <= max(1e-9, _REL_TOL * job.work), \
                f"job {job.job_id}: work {got} != {job.work}"
        if not preemptive:
            seen_closed = set()
            last_id: Optional[int] = None
            last_end: Optional[float] = None
            for segment in self.segments:
                if segment.job_id != last_id:
                    assert segment.job_id not in seen_closed, \
                        f"job {segment.job_id} preempted"
                    if last_id is not None:
                        seen_closed.add(last_id)
                    last_id = segment.job_id
                elif last_end is not None:
                    # Same job continuing: must be back-to-back (a speed
                    # change, not a preemption).
                    assert abs(segment.start - last_end) <= _REL_TOL, \
                        f"job {segment.job_id} has a gap (preemption?)"
                last_end = segment.end
