"""Average Rate (AVR): the other online heuristic of Yao et al.

Alongside OA, Yao, Demers & Shenker's 1995 paper proposed AVR: run the
processor at the *sum of the densities* of all currently-live jobs
(each job contributes ``w/(d-a)`` throughout its own window) and
execute in EDF order.  AVR is ``2^(alpha-1) * alpha^alpha``-competitive
against YDS --- weaker than OA's ``alpha^alpha`` --- and needs no
replanning, just an accumulator.

Included to round out the algorithm family the paper situates POLARIS
in (Figure 4): YDS (offline preemptive), OA/AVR (online preemptive),
POLARIS (online non-preemptive).  The theory bench compares all four.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.theory.model import ProblemInstance, Schedule, Segment

_TOL = 1e-12


def avr_speed_profile(instance: ProblemInstance
                      ) -> List[Tuple[float, float, float]]:
    """Piecewise-constant speed: sum of live jobs' densities.

    Breakpoints at every arrival and deadline.
    """
    events = sorted({j.arrival for j in instance.jobs}
                    | {j.deadline for j in instance.jobs})
    profile: List[Tuple[float, float, float]] = []
    for start, end in zip(events, events[1:]):
        # The ``window > _TOL`` guard keeps point-deadline jobs out of
        # the accumulator: a sub-tolerance window can satisfy both
        # tolerance-padded endpoint tests for a slot it cannot actually
        # occupy, pouring its (near-infinite) density into a neighbour.
        speed = sum(j.density for j in instance.jobs
                    if j.window > _TOL
                    and j.arrival <= start + _TOL
                    and j.deadline >= end - _TOL)
        if speed > _TOL:
            profile.append((start, end, speed))
    return profile


def avr_energy(instance: ProblemInstance, alpha: float = 3.0) -> float:
    """AVR energy straight from the density-sum profile."""
    return sum((end - start) * speed ** alpha
               for start, end, speed in avr_speed_profile(instance))


def avr_schedule(instance: ProblemInstance) -> Schedule:
    """AVR's schedule: preemptive EDF over the density-sum profile.

    Feasibility follows from the classic argument: within any interval,
    the available capacity covers every live job's proportional share.
    """
    profile = avr_speed_profile(instance)
    remaining: Dict[int, float] = {j.job_id: j.work for j in instance.jobs}
    segments: List[Segment] = []
    for slot_start, slot_end, speed in profile:
        t = slot_start
        while t < slot_end - _TOL:
            ready = [j for j in instance.jobs
                     if j.arrival <= t + _TOL
                     and remaining[j.job_id] > _TOL]
            if not ready:
                break
            job = min(ready, key=lambda j: (j.deadline, j.job_id))
            finish_in = remaining[job.job_id] / speed
            until = min(t + finish_in, slot_end)
            if until <= t + _TOL:
                break
            segments.append(Segment(t, until, speed, job.job_id))
            remaining[job.job_id] = max(
                0.0, remaining[job.job_id] - speed * (until - t))
            t = until
    return Schedule(_coalesce(segments))


def _coalesce(segments: List[Segment]) -> List[Segment]:
    out: List[Segment] = []
    for seg in sorted(segments, key=lambda s: s.start):
        if out:
            last = out[-1]
            if last.job_id == seg.job_id \
                    and abs(last.speed - seg.speed) <= 1e-9 \
                    and abs(last.end - seg.start) <= 1e-9:
                out[-1] = Segment(last.start, seg.end, last.speed,
                                  last.job_id)
                continue
        out.append(seg)
    return out
