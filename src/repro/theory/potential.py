"""Numerical verification of Appendix C's potential-function argument.

Theorem 4.4 states ``Pow[POLARIS(P)] <= alpha^alpha * Pow[YDS(P')]``
where P' scales every load by ``c = 1 + w_max/w_min``.  Appendix C
proves it with the amortization potential (following Bansal et al.):

    phi(t) = alpha * sum_i s_pna(t_i)^(alpha-1)
                     * ( w_P(t_i, t_{i+1}) - alpha * w_Y(t_i, t_{i+1}) )

where, at time t,

* ``s_pna`` is POLARIS's *planned* no-arrival speed staircase --- the
  YDS/OA plan over its currently pending work (critical-interval
  densities, non-increasing);
* ``t_i`` are the plan's critical-interval boundaries;
* ``w_P(a, b]`` / ``w_Y(a, b]`` are the unfinished work with deadlines
  in ``(a, b]`` of POLARIS on P and of YDS on P', respectively.

Appendix C's three claims, each of which this module checks
numerically along actual simulated trajectories:

1. ``phi`` is zero before the first arrival and after the last
   completion;
2. ``phi`` does not increase at arrival or completion events;
3. between events, ``s_P(t)^alpha + dphi/dt <= alpha^alpha *
   s_Y(t)^alpha`` (checked by central finite differences).

Integrating claim 3 between events and summing yields Theorem 4.4,
which :func:`verify_theorem_4_4` also checks directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.theory.model import ProblemInstance, Schedule
from repro.theory.oa import _staircase_plan
from repro.theory.polaris_ideal import polaris_ideal_schedule
from repro.theory.yds import yds_schedule

_TOL = 1e-12


# ----------------------------------------------------------------------
# Trajectory reconstruction from schedules
# ----------------------------------------------------------------------
def remaining_at(schedule: Schedule, instance: ProblemInstance,
                 t: float) -> Dict[int, float]:
    """Per-job unfinished work at time ``t`` (arrived jobs only)."""
    remaining = {}
    for job in instance.jobs:
        if job.arrival <= t + _TOL:
            remaining[job.job_id] = job.work
    for segment in schedule.segments:
        if segment.end <= t + _TOL:
            done = segment.work_done
        elif segment.start < t:
            done = segment.speed * (t - segment.start)
        else:
            continue
        if segment.job_id in remaining:
            remaining[segment.job_id] = max(
                0.0, remaining[segment.job_id] - done)
    return {job_id: w for job_id, w in remaining.items() if w > 1e-9}


def speed_at(schedule: Schedule, t: float) -> float:
    """The schedule's speed at time ``t`` (0 when idle)."""
    for segment in schedule.segments:
        if segment.start - _TOL <= t < segment.end - _TOL:
            return segment.speed
    return 0.0


# ----------------------------------------------------------------------
# The potential function
# ----------------------------------------------------------------------
def phi(t: float, instance: ProblemInstance, scaled: ProblemInstance,
        polaris: Schedule, yds: Schedule, alpha: float) -> float:
    """Evaluate Appendix C's potential at time ``t``."""
    deadlines = {j.job_id: j.deadline for j in instance.jobs}
    pending_p = remaining_at(polaris, instance, t)
    if not pending_p:
        return 0.0
    pending_y = remaining_at(yds, scaled, t)

    # POLARIS's no-arrival plan: the OA staircase over its pending work.
    entries = [(deadlines[job_id], rem, job_id)
               for job_id, rem in pending_p.items()]
    plan = _staircase_plan(t, entries)

    total = 0.0
    boundary = t
    for speed, group in plan:
        interval_end = group[-1][0]
        w_p = sum(rem for _d, rem, _id in group)
        w_y = sum(rem for job_id, rem in pending_y.items()
                  if boundary < deadlines[job_id] <= interval_end + _TOL)
        total += speed ** (alpha - 1) * (w_p - alpha * w_y)
        boundary = interval_end
    return alpha * total


@dataclass
class PotentialCheck:
    """Outcome of the Appendix C verification on one instance."""

    alpha: float
    c_factor: float
    energy_polaris: float
    energy_yds_scaled: float
    claim1_boundary_values: Tuple[float, float]
    claim2_max_event_jump: float
    claim3_max_violation: float
    drift_samples: int

    @property
    def theorem_4_4_holds(self) -> bool:
        return self.energy_polaris \
            <= self.alpha ** self.alpha * self.energy_yds_scaled \
            * (1 + 1e-6) + 1e-9

    @property
    def all_claims_hold(self) -> bool:
        return (abs(self.claim1_boundary_values[0]) < 1e-6
                and abs(self.claim1_boundary_values[1]) < 1e-6
                and self.claim2_max_event_jump < 1e-6
                and self.claim3_max_violation < 1e-6
                and self.theorem_4_4_holds)


def verify_theorem_4_4(instance: ProblemInstance, alpha: float = 3.0,
                       drift_points: int = 7) -> PotentialCheck:
    """Check Appendix C's claims numerically on one instance.

    Simulates POLARIS on P and YDS on P' (loads scaled by c), then
    samples the potential around every event and at ``drift_points``
    interior points of every inter-event gap.
    """
    c = instance.c_factor()
    scaled = instance.scaled(c)
    polaris = polaris_ideal_schedule(instance)
    yds = yds_schedule(scaled)

    # Event times: arrivals plus both algorithms' segment boundaries.
    events = sorted({j.arrival for j in instance.jobs}
                    | {s.start for s in polaris.segments}
                    | {s.end for s in polaris.segments}
                    | {s.start for s in yds.segments}
                    | {s.end for s in yds.segments})
    start, end = events[0], events[-1]
    span = end - start
    eps = max(span * 1e-7, 1e-9)

    def potential(t: float) -> float:
        return phi(t, instance, scaled, polaris, yds, alpha)

    # Claim 1: zero at the boundaries.
    boundary_values = (potential(start - eps), potential(end + eps))

    # Claim 2: no event increases phi.  phi drifts continuously between
    # events, so one-sided limits are recovered by linear extrapolation
    # from two sample points on each side (cancelling first-order drift
    # across the +/-eps window).
    max_jump = 0.0
    for event in events:
        left_limit = 2 * potential(event - eps) - potential(event - 2 * eps)
        right_limit = 2 * potential(event + eps) - potential(event + 2 * eps)
        scale = max(1.0, abs(left_limit), abs(right_limit))
        max_jump = max(max_jump, (right_limit - left_limit) / scale)

    # Claim 3: drift inequality between events (central differences).
    max_violation = 0.0
    samples = 0
    alpha_pow = alpha ** alpha
    for left, right in zip(events, events[1:]):
        gap = right - left
        if gap < 10 * eps:
            continue
        h = min(gap / 20.0, max(gap * 1e-4, eps))
        for k in range(1, drift_points + 1):
            t = left + gap * k / (drift_points + 1)
            s_p = speed_at(polaris, t)
            s_y = speed_at(yds, t)
            dphi = (potential(t + h) - potential(t - h)) / (2 * h)
            lhs = s_p ** alpha + dphi
            rhs = alpha_pow * s_y ** alpha
            scale = max(1.0, abs(lhs), abs(rhs))
            max_violation = max(max_violation, (lhs - rhs) / scale)
            samples += 1

    return PotentialCheck(
        alpha=alpha,
        c_factor=c,
        energy_polaris=polaris.energy(alpha),
        energy_yds_scaled=yds.energy(alpha),
        claim1_boundary_values=boundary_values,
        claim2_max_event_jump=max_jump,
        claim3_max_violation=max_violation,
        drift_samples=samples,
    )
