"""Lightweight wall-clock accounting for the experiment harness.

Every sweep produces a :class:`TimingReport`: per-phase wall time,
per-cell wall time and simulator events/second, and cache hit counts.
The CLI renders the report after each figure and appends a compact
summary entry to a ``BENCH_harness.json`` trajectory file, so harness
speed (serial vs ``--jobs N``, cold vs warm cache) is tracked
PR-over-PR.

The trajectory file is a JSON object ``{"runs": [...]}``; each entry
records what was run, how it was run (jobs, cache hits) and how fast it
went.  Entries are appended, never rewritten, so the file is a
time-ordered log.  Set ``REPRO_BENCH_FILE`` to redirect it (the default
is ``BENCH_harness.json`` in the current directory).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

BENCH_FILE_ENV = "REPRO_BENCH_FILE"
DEFAULT_BENCH_FILE = "BENCH_harness.json"


def wall_clock() -> float:
    """Unix epoch seconds --- the ONLY sanctioned wall-clock read.

    Wall time may only ever label *metadata* (trajectory timestamps,
    report headers); it must never feed simulation state.  reprolint
    RL001 enforces this: every other ``time.time()``/``datetime.now()``
    in the tree is a lint error, so "what can observe the host clock"
    stays exactly two grep-sized functions.
    """
    return time.time()


def perf_clock() -> float:
    """Monotonic high-resolution seconds for measuring *harness* speed.

    Same contract as :func:`wall_clock`: results may be recorded
    (phase timings, cells/sec) but never influence simulated behaviour.
    """
    return time.perf_counter()


@dataclass
class CellTiming:
    """One sweep cell's execution record."""

    label: str
    cached: bool
    wall_seconds: float
    sim_events: int = 0

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0 or self.sim_events <= 0:
            return 0.0
        return self.sim_events / self.wall_seconds


@dataclass
class TimingReport:
    """Wall-time accounting for one harness invocation (e.g. one figure)."""

    name: str
    jobs: int = 1
    phases: Dict[str, float] = field(default_factory=dict)
    cells: List[CellTiming] = field(default_factory=list)
    started_at: float = field(default_factory=wall_clock)
    #: Sweep wall-clock seconds, accumulated across the runner's
    #: ``run()`` calls.  This is the parallel-aware throughput
    #: denominator: per-cell walls overlap under ``jobs > 1``, so
    #: summing them undercounts events/sec by ~the worker count.
    sweep_wall_seconds: float = 0.0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; re-entering a name accumulates."""
        start = perf_clock()
        try:
            yield
        finally:
            elapsed = perf_clock() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def record_cell(self, label: str, cached: bool, wall_seconds: float,
                    sim_events: int = 0) -> None:
        self.cells.append(CellTiming(label, cached, wall_seconds, sim_events))

    def record_sweep(self, wall_seconds: float) -> None:
        """Accumulate one sweep's wall-clock time (the runner calls
        this once per ``run()``)."""
        self.sweep_wall_seconds += wall_seconds

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for c in self.cells if not c.cached)

    @property
    def total_wall_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def total_sim_events(self) -> int:
        return sum(c.sim_events for c in self.cells)

    def aggregate_events_per_sec(self) -> float:
        """Simulated events per wall second, over executed (uncached)
        cells --- the harness's end-to-end simulation throughput.

        The denominator is the sweep wall clock when the runner
        recorded one (correct under ``jobs > 1``, where per-cell walls
        overlap); reports fed by hand (no runner) fall back to the
        summed per-cell walls, which equal the sweep wall serially.
        """
        executed = [c for c in self.cells if not c.cached]
        events = sum(c.sim_events for c in executed)
        wall = self.sweep_wall_seconds if self.sweep_wall_seconds > 0 \
            else sum(c.wall_seconds for c in executed)
        return events / wall if wall > 0 else 0.0

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def render(self) -> str:
        out = [f"timing [{self.name}] jobs={self.jobs}"]
        for phase, seconds in self.phases.items():
            out.append(f"  {phase:24s} {seconds:8.2f} s")
        if self.cells:
            out.append(
                f"  cells: {len(self.cells)} "
                f"({self.cache_hits} cached, {self.cache_misses} simulated)")
            rate = self.aggregate_events_per_sec()
            if rate > 0:
                out.append(f"  simulated events/sec: {rate:,.0f}")
            slowest = max(self.cells, key=lambda c: c.wall_seconds)
            out.append(f"  slowest cell: {slowest.label} "
                       f"({slowest.wall_seconds:.2f} s)")
        return "\n".join(out)

    def to_entry(self) -> Dict[str, object]:
        """The compact summary appended to the trajectory file."""
        return {
            "name": self.name,
            "started_at": self.started_at,
            "jobs": self.jobs,
            "phases": {k: round(v, 4) for k, v in self.phases.items()},
            "wall_seconds": round(self.total_wall_seconds, 4),
            "cells": len(self.cells),
            "cache_hits": self.cache_hits,
            "sim_events": self.total_sim_events,
            "events_per_sec": round(self.aggregate_events_per_sec(), 1),
        }


def bench_file_path(path: Optional[str] = None) -> Path:
    return Path(path or os.environ.get(BENCH_FILE_ENV, DEFAULT_BENCH_FILE))


def append_trajectory(report: TimingReport,
                      path: Optional[str] = None) -> Path:
    """Append ``report``'s summary entry to the trajectory file."""
    target = bench_file_path(path)
    data: Dict[str, List[Dict[str, object]]] = {"runs": []}
    if target.exists():
        try:
            loaded = json.loads(target.read_text())
            if isinstance(loaded, dict) and isinstance(
                    loaded.get("runs"), list):
                data = loaded
        except (ValueError, OSError):
            pass  # corrupt trajectory: start a fresh log rather than die
    data["runs"].append(report.to_entry())
    target.write_text(json.dumps(data, indent=2) + "\n")
    return target


def load_trajectory(path: Optional[str] = None) -> List[Dict[str, object]]:
    """All recorded runs (empty if the file is missing or corrupt)."""
    target = bench_file_path(path)
    if not target.exists():
        return []
    try:
        loaded = json.loads(target.read_text())
    except (ValueError, OSError):
        return []
    runs = loaded.get("runs") if isinstance(loaded, dict) else None
    return runs if isinstance(runs, list) else []


__all__ = [
    "CellTiming", "TimingReport", "append_trajectory", "bench_file_path",
    "load_trajectory", "perf_clock", "wall_clock",
]
