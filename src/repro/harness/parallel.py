"""Parallel sweep execution with a content-addressed on-disk cache.

Every figure reproduction is a grid of fully independent,
seed-deterministic :class:`ExperimentConfig` cells.  :class:`SweepRunner`
exploits both properties:

* **Parallelism** --- cache misses fan out over a *persistent*
  ``concurrent.futures.ProcessPoolExecutor`` (module-level, reused
  across sweeps, warmed by an initializer that pre-imports the
  experiment stack and hashes the source tree).  Each cell is an
  isolated simulation with its own RNG streams, so results are
  independent of worker assignment, and the runner returns them in
  submission order --- parallel output is byte-identical to serial.
  Cells cross the process boundary as compact dicts (non-default
  config fields only) and are submitted in chunks to amortize IPC.
* **Caching** --- each cell's result is stored on disk under a key that
  hashes the full config dataclass **and** a digest of the
  :mod:`repro` package's source code.  Re-running a figure only
  simulates cells whose config changed; editing any source file under
  ``repro/`` invalidates everything (coarse, but sound --- a stale
  figure is worse than a re-run).

Worker count resolves ``jobs`` argument > ``REPRO_JOBS`` env >
``os.cpu_count()``.  ``jobs=1`` runs serially in-process (no executor),
which is also the fallback wherever process pools are unavailable.

Cache layout (see README):

.. code-block:: text

    .repro-cache/
      <2-char prefix>/<sha256>.pkl    # one pickled ExperimentResult

``SweepRunner(use_cache=False)`` bypasses reads and writes;
:meth:`SweepCache.clear` (CLI: ``--clear-cache``) wipes the tree.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import MISSING, asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.analysis.sanitizer import simsan_enabled
from repro.faults.plan import plan_fingerprint
from repro.obs.trace import trace_enabled
from repro.harness.experiment import (
    ExperimentConfig, ExperimentResult, run_experiment,
)
from repro.harness.profiling import TimingReport, perf_clock

JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every cache entry without touching source files
#: (e.g. when the pickle layout of ExperimentResult changes).
CACHE_SCHEMA_VERSION = 2

_code_salt_memo: Optional[str] = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}") from None
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def code_version_salt() -> str:
    """Digest of every ``.py`` file in the :mod:`repro` package.

    Any source edit changes the salt, so cached results can never
    outlive the code that produced them.  Memoized per process (~150
    small files, a few milliseconds once).
    """
    global _code_salt_memo
    if _code_salt_memo is None:
        digest = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_salt_memo = digest.hexdigest()
    return _code_salt_memo


def config_key(config: ExperimentConfig, salt: Optional[str] = None) -> str:
    """Content address of one cell: config fields + code version."""
    payload = {
        "config": asdict(config),
        "salt": salt if salt is not None else code_version_salt(),
        "schema": CACHE_SCHEMA_VERSION,
        # Sanitized runs are byte-identical by contract, but contracts
        # are what simsan exists to doubt: keep their cache entries
        # disjoint so a sanitizer experiment can never feed a figure.
        "simsan": simsan_enabled(),
        # Traced runs carry extra diagnostics (trace_events) in their
        # results; same disjointness argument as simsan.
        "trace": trace_enabled(),
        # The *resolved* fault plan (config > REPRO_FAULTS > none):
        # asdict above already covers explicit config.faults values, but
        # an env-injected plan would otherwise alias the healthy run's
        # cache entry.
        "faults": plan_fingerprint(config.faults),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class SweepCache:
    """Pickle-per-key result store under ``root`` (``.repro-cache/``)."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root if root is not None
                         else os.environ.get(CACHE_DIR_ENV,
                                             DEFAULT_CACHE_DIR))

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[ExperimentResult]:
        """The cached result, or ``None`` on miss or unreadable entry."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # A torn/corrupt/stale entry raises whatever the pickle
            # opcodes stumble on (UnpicklingError, ValueError, EOFError,
            # ImportError, ...); any unreadable entry is simply a miss.
            return None
        return result if isinstance(result, ExperimentResult) else None

    def put(self, key: str, result: ExperimentResult) -> None:
        """Store atomically (write temp, rename) so readers never see a
        torn entry even with concurrent sweeps on one machine."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for sub in sorted(self.root.rglob("*"), reverse=True):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))


def _run_cell(config: ExperimentConfig) -> ExperimentResult:
    """Top-level so ProcessPoolExecutor can pickle it by reference."""
    return run_experiment(config)


# ----------------------------------------------------------------------
# Persistent worker pool
# ----------------------------------------------------------------------
#: Env vars a worker process snapshots when it starts; repro reads them
#: lazily, but a pool forked under one setting must not serve sweeps
#: run under another (the sanitizer/trace/fault switches would silently
#: keep their old values inside reused workers).
_POOL_ENV_VARS = ("REPRO_SIMSAN", "REPRO_TRACE", "REPRO_FAULTS")

_pool: Optional[ProcessPoolExecutor] = None
_pool_key: Optional[Tuple[int, Tuple[Optional[str], ...]]] = None


def _pool_env_fingerprint() -> Tuple[Optional[str], ...]:
    return tuple(os.environ.get(name) for name in _POOL_ENV_VARS)


def _warm_worker() -> None:
    """Pool initializer, run once per worker process: import the full
    experiment stack and hash the source tree, so the first cell a
    worker executes pays neither the import cascade nor the salt."""
    import repro.harness.experiment  # noqa: F401
    code_version_salt()


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent sweep pool, (re)built on demand.

    Worker processes survive across :meth:`SweepRunner.run` calls, so
    every sweep after the first (figure after figure in one CLI
    invocation, back-to-back grids in tests) skips process spawn,
    interpreter startup, and the :func:`_warm_worker` warmup.  The pool
    is keyed on the worker count *and* the :data:`_POOL_ENV_VARS`
    fingerprint: flipping simsan/trace/faults between sweeps rebuilds
    it rather than reusing workers with stale environment snapshots.
    """
    global _pool, _pool_key
    key = (workers, _pool_env_fingerprint())
    if _pool is not None and _pool_key != key:
        shutdown_shared_pool()
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers,
                                    initializer=_warm_worker)
        _pool_key = key
    return _pool


def shutdown_shared_pool() -> None:
    """Tear down the persistent pool (env change, breakage, interpreter
    exit).  Safe to call when no pool exists."""
    global _pool, _pool_key
    pool, _pool, _pool_key = _pool, None, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_shared_pool)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def _config_defaults() -> Dict[str, object]:
    defaults = {}
    for f in fields(ExperimentConfig):
        if f.default is not MISSING:
            defaults[f.name] = f.default
        elif f.default_factory is not MISSING:  # type: ignore[misc]
            defaults[f.name] = f.default_factory()  # type: ignore[misc]
    return defaults


_WIRE_DEFAULTS = _config_defaults()


def _config_to_wire(config: ExperimentConfig) -> Dict[str, object]:
    """Compact dict of the fields that differ from the defaults.

    Sweeps override a handful of ExperimentConfig's ~25 fields; sending
    only those keeps the pickled task payload small, which matters once
    cells are submitted in chunks of many configs.
    """
    wire = {}
    for name, default in _WIRE_DEFAULTS.items():
        value = getattr(config, name)
        if value != default:
            wire[name] = value
    return wire


def _run_chunk(wires: Sequence[Dict[str, object]]) -> List[ExperimentResult]:
    """Worker-side entry point: rebuild each compact config and run it."""
    return [run_experiment(ExperimentConfig(**wire)) for wire in wires]


def _cacheable(config: ExperimentConfig) -> bool:
    """Cells that asked for trace artifacts always run: a cache hit
    would return the metrics without ever writing the requested files.
    (Env-level ``REPRO_TRACE=1`` without export paths still caches ---
    under its own salt --- since no artifact was requested.)"""
    return config.trace_path is None and config.trace_series_path is None


def _cell_label(config: ExperimentConfig) -> str:
    return (f"{config.benchmark}/{config.scheme}"
            f"/load={config.load_fraction:g}/slack={config.slack:g}")


@dataclass
class SweepStats:
    """What the last :meth:`SweepRunner.run` did."""

    cells: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_seconds: float = 0.0
    #: per-cell wall seconds, aligned with the submitted config order.
    cell_seconds: List[float] = field(default_factory=list)


class SweepRunner:
    """Runs independent experiment cells, in parallel, through the cache.

    Results always come back in the order the configs were given ---
    callers observe serial semantics regardless of ``jobs``.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_cache: bool = True,
                 report: Optional[TimingReport] = None):
        self.jobs = resolve_jobs(jobs)
        self.cache = SweepCache(cache_dir)
        self.use_cache = use_cache
        self.report = report
        self.stats = SweepStats()

    def run(self, configs: Sequence[ExperimentConfig]
            ) -> List[ExperimentResult]:
        """Execute (or recall) every cell; deterministic output order."""
        start = perf_clock()
        configs = list(configs)
        results: List[Optional[ExperimentResult]] = [None] * len(configs)
        cell_seconds = [0.0] * len(configs)
        salt = code_version_salt() if self.use_cache else None
        keys: List[Optional[str]] = [None] * len(configs)

        misses: List[int] = []
        hits = 0
        for i, config in enumerate(configs):
            if self.use_cache and _cacheable(config):
                keys[i] = config_key(config, salt)
                cached = self.cache.get(keys[i])
                if cached is not None:
                    results[i] = cached
                    hits += 1
                    if self.report is not None:
                        self.report.record_cell(
                            _cell_label(config), cached=True,
                            wall_seconds=0.0,
                            sim_events=cached.sim_events)
                    continue
            misses.append(i)

        def finish(i: int, result: ExperimentResult) -> None:
            # Cache each cell the moment it lands, so an interrupted
            # sweep resumes from the cells it already finished.
            results[i] = result
            cell_seconds[i] = result.wall_seconds
            if self.use_cache and keys[i] is not None:
                self.cache.put(keys[i], result)
            if self.report is not None:
                self.report.record_cell(
                    _cell_label(configs[i]), cached=False,
                    wall_seconds=result.wall_seconds,
                    sim_events=result.sim_events)

        if misses:
            if self.jobs > 1 and len(misses) > 1:
                self._run_parallel(configs, misses, finish)
            else:
                for i in misses:
                    finish(i, _run_cell(configs[i]))

        self.stats = SweepStats(
            cells=len(configs), cache_hits=hits, executed=len(misses),
            wall_seconds=perf_clock() - start,
            cell_seconds=cell_seconds)
        if self.report is not None:
            # The report's throughput denominator must be the sweep
            # wall clock: under parallel execution the per-cell walls
            # overlap, and summing them undercounts events/sec by
            # roughly the worker count.
            self.report.record_sweep(self.stats.wall_seconds)
        return [r for r in results if r is not None]

    def _run_parallel(self, configs: Sequence[ExperimentConfig],
                      misses: Sequence[int],
                      finish: Callable[[int, ExperimentResult], None]
                      ) -> None:
        # Chunking amortizes per-task IPC; several chunks per worker
        # keep the tail balanced when cell costs vary across the grid.
        chunk_size = max(1, len(misses)
                         // (min(self.jobs, len(misses)) * 4))
        chunks = [list(misses[pos:pos + chunk_size])
                  for pos in range(0, len(misses), chunk_size)]
        finished = set()
        broken = False
        try:
            # Sized by self.jobs (not this sweep's miss count) so the
            # persistent pool is reused across sweeps of any size;
            # worker processes are spawned on demand, so small sweeps
            # never pay for idle slots.
            pool = shared_pool(self.jobs)
            future_chunk = {
                pool.submit(_run_chunk,
                            [_config_to_wire(configs[i]) for i in chunk]):
                chunk for chunk in chunks}
            pending = set(future_chunk)
            while pending and not broken:
                done, pending = wait(pending,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    # Harvest every completed chunk in this batch even
                    # if a sibling future carries the pool's death ---
                    # cells that already landed must not re-run.
                    try:
                        chunk_results = future.result()
                    except (BrokenProcessPool, OSError,
                            PermissionError):
                        broken = True
                        continue
                    for i, result in zip(future_chunk[future],
                                         chunk_results):
                        finish(i, result)
                        finished.add(i)
        except (BrokenProcessPool, OSError, PermissionError):
            # Pool construction or submission failed outright (no
            # process spawning in sandboxes/some CI runners, or the
            # executor was already poisoned).
            broken = True
        if broken:
            # A dead worker (OOM-kill, signal) poisons the whole
            # executor --- discard it so the next sweep gets a fresh
            # pool, and degrade to serial for exactly the cells that
            # have not already landed rather than fail the sweep.
            shutdown_shared_pool()
            for i in misses:
                if i not in finished:
                    finish(i, _run_cell(configs[i]))


def run_sweep(configs: Sequence[ExperimentConfig],
              jobs: Optional[int] = None,
              use_cache: bool = True,
              cache_dir: Optional[os.PathLike] = None,
              report: Optional[TimingReport] = None
              ) -> List[ExperimentResult]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir,
                         use_cache=use_cache, report=report)
    return runner.run(configs)


__all__ = [
    "CACHE_DIR_ENV", "DEFAULT_CACHE_DIR", "JOBS_ENV", "SweepCache",
    "SweepRunner", "SweepStats", "code_version_salt", "config_key",
    "resolve_jobs", "run_sweep", "shared_pool", "shutdown_shared_pool",
]
