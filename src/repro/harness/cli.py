"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    polaris-repro fig6            # or: python -m repro.harness fig6
    polaris-repro fig6 --jobs 4   # fan cells out over 4 processes
    polaris-repro fig10 --trace-seconds 300
    polaris-repro all

Each command prints the same rows/series the paper's corresponding
table or figure reports (see EXPERIMENTS.md for the mapping and for
recorded paper-vs-measured comparisons), followed by a timing report.
Grid-shaped figures run their cells through the parallel sweep runner:
``--jobs N`` (or ``REPRO_JOBS``) controls worker processes, and results
are cached under ``.repro-cache/`` so re-runs only simulate changed
cells (``--no-cache`` bypasses, ``--clear-cache`` wipes).  Timing
summaries append to ``BENCH_harness.json`` (``REPRO_BENCH_FILE``
overrides) so harness speed is tracked over time.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.faults.plan import resolve_fault_plan
from repro.harness import figures
from repro.harness.parallel import SweepCache, resolve_jobs
from repro.harness.profiling import TimingReport, append_trajectory

COMMANDS: Dict[str, Callable[[figures.FigureOptions], object]] = {
    "fig3": lambda o: figures.fig3_exec_times(o),
    "fig6": lambda o: figures.fig6_tpcc_medium(o),
    "fig7": lambda o: figures.fig7_tpce_medium(o),
    "fig8": lambda o: figures.fig8_tpcc_low(o),
    "fig9": lambda o: figures.fig9_tpcc_high(o),
    "fig10": lambda o: figures.fig10_worldcup(o),
    "fig11": lambda o: figures.fig11_differentiation(o),
    "fig12": lambda o: figures.fig12_variants(o),
    "theory": lambda o: figures.theory_competitive(),
    "overhead": lambda o: figures.polaris_overhead(),
    "extension": lambda o: figures.extension_worker_parking(o),
    "resilience": lambda o: figures.resilience_figure(o),
    "arena": lambda o: figures.arena_tournament(o),
    "granularity": lambda o: figures.granularity_figure(o),
    "fleet": lambda o: figures.fleet_elastic_frontier(o),
    "availability": lambda o: figures.availability_figure(o),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="polaris-repro",
        description="Reproduce tables/figures from 'Workload-Aware CPU "
                    "Performance Scaling for Transactional Database "
                    "Systems' (SIGMOD 2018).")
    parser.add_argument("figure", choices=sorted(COMMANDS) + ["all"],
                        help="which figure to regenerate")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker/core count (default 16, as the paper)")
    parser.add_argument("--test-seconds", type=float, default=None,
                        help="measured test-phase length per cell")
    parser.add_argument("--trace-seconds", type=int, default=None,
                        help="trace length for fig10 (paper: ~300)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="processes for sweep cells (default: "
                             "REPRO_JOBS or the machine's cpu count)")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="export a Perfetto trace (.trace.json, open "
                             "at ui.perfetto.dev) and metric-series CSV "
                             "per cell into DIR; traced cells always "
                             "re-run (never served from the cache)")
    parser.add_argument("--faults", metavar="SCENARIO", default=None,
                        help="run every cell under a repro.faults scenario "
                             "('burst', 'brownout', 'sticky-pstate', "
                             "'dying-core', '+'-compositions like "
                             "'burst+brownout', or a plan JSON path); the "
                             "'resilience' and 'availability' figures and "
                             "the 'arena' fault rounds supply their own "
                             "scenarios")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="wipe .repro-cache/ before running")
    parser.add_argument("--no-bench-log", action="store_true",
                        help="skip appending to BENCH_harness.json")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        resolved_jobs = resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))
    options = figures.FigureOptions.from_env()
    if args.workers is not None:
        options.workers = args.workers
    if args.test_seconds is not None:
        options.test_seconds = args.test_seconds
    if args.trace_seconds is not None:
        options.trace_seconds = args.trace_seconds
    if args.seed is not None:
        options.seed = args.seed
    options.jobs = args.jobs
    options.use_cache = not args.no_cache
    options.trace_dir = args.trace
    if args.faults is not None:
        # Resolve eagerly so a typo'd scenario name or unreadable plan
        # file is a clean usage error, not a mid-sweep traceback.
        try:
            resolve_fault_plan(args.faults)
        except (ValueError, OSError) as exc:
            parser.error(str(exc))
    options.faults = args.faults

    if args.clear_cache:
        removed = SweepCache().clear()
        print(f"[cache cleared: {removed} entries]")

    names = sorted(COMMANDS) if args.figure == "all" else [args.figure]
    for name in names:
        report = TimingReport(name, jobs=resolved_jobs)
        options.report = report
        with report.phase("total"):
            result = COMMANDS[name](options)
        print(result.render())
        print()
        print(report.render())
        if not args.no_bench_log:
            target = append_trajectory(report)
            print(f"[timing appended to {target}]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
