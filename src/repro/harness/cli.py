"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    polaris-repro fig6            # or: python -m repro.harness fig6
    polaris-repro fig10 --trace-seconds 300
    polaris-repro all

Each command prints the same rows/series the paper's corresponding
table or figure reports (see EXPERIMENTS.md for the mapping and for
recorded paper-vs-measured comparisons).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.harness import figures

COMMANDS: Dict[str, Callable[[figures.FigureOptions], object]] = {
    "fig3": lambda o: figures.fig3_exec_times(o),
    "fig6": lambda o: figures.fig6_tpcc_medium(o),
    "fig7": lambda o: figures.fig7_tpce_medium(o),
    "fig8": lambda o: figures.fig8_tpcc_low(o),
    "fig9": lambda o: figures.fig9_tpcc_high(o),
    "fig10": lambda o: figures.fig10_worldcup(o),
    "fig11": lambda o: figures.fig11_differentiation(o),
    "fig12": lambda o: figures.fig12_variants(o),
    "theory": lambda o: figures.theory_competitive(),
    "overhead": lambda o: figures.polaris_overhead(),
    "extension": lambda o: figures.extension_worker_parking(o),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="polaris-repro",
        description="Reproduce tables/figures from 'Workload-Aware CPU "
                    "Performance Scaling for Transactional Database "
                    "Systems' (SIGMOD 2018).")
    parser.add_argument("figure", choices=sorted(COMMANDS) + ["all"],
                        help="which figure to regenerate")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker/core count (default 16, as the paper)")
    parser.add_argument("--test-seconds", type=float, default=None,
                        help="measured test-phase length per cell")
    parser.add_argument("--trace-seconds", type=int, default=None,
                        help="trace length for fig10 (paper: ~300)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    options = figures.FigureOptions.from_env()
    if args.workers is not None:
        options.workers = args.workers
    if args.test_seconds is not None:
        options.test_seconds = args.test_seconds
    if args.trace_seconds is not None:
        options.trace_seconds = args.trace_seconds
    if args.seed is not None:
        options.seed = args.seed

    names = sorted(COMMANDS) if args.figure == "all" else [args.figure]
    for name in names:
        start = time.time()
        result = COMMANDS[name](options)
        print(result.render())
        print(f"[{name} done in {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
