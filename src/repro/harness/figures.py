"""Per-figure reproduction functions.

One function per table/figure of the paper's evaluation section.  Each
returns a structured result object whose ``render()`` produces the same
rows/series the paper reports; the benchmark suite and the CLI print
these.  Scaled-down durations keep the full suite tractable; set
``REPRO_BENCH_SCALE`` (e.g. ``2.0``) to lengthen the measured phases,
and ``REPRO_BENCH_WORKERS`` to change the worker/core count (16 matches
the paper's testbed and the power calibration).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request
from repro.core.workload import Workload
from repro.faults.plan import FaultsLike
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.parallel import SweepRunner
from repro.harness.profiling import perf_clock
from repro.harness.profiling import TimingReport
from repro.harness.schemes import (
    ARENA_SCHEMES, FIGURE_BASELINE_SCHEMES, VARIANT_SCHEMES,
)
from repro.metrics.report import (
    availability_record, availability_table, format_series, format_table,
    sparkline,
)
from repro.theory.instances import (
    adversarial_pair, random_agreeable_instance, random_instance,
)
from repro.theory.avr import avr_schedule
from repro.theory.model import DEFAULT_ALPHA
from repro.theory.oa import oa_schedule
from repro.theory.polaris_ideal import polaris_ideal_schedule
from repro.theory.potential import verify_theorem_4_4
from repro.theory.yds import yds_energy
from repro.fleet.config import FleetConfig
from repro.workloads.tpcc import FIGURE3_AT_1200MHZ, FIGURE3_CALIBRATION
from repro.workloads.traces import (
    normalize, synthesize_diurnal_trace, synthesize_worldcup_trace,
)

#: Slack values swept in Figures 6-9 and 12.
DEFAULT_SLACKS = (10, 40, 70, 100)


@dataclass
class FigureOptions:
    """Run-size knobs shared by all figure reproductions."""

    workers: int = 16
    warmup_seconds: float = 1.0
    test_seconds: float = 4.0
    trace_seconds: int = 120
    seed: int = 42
    slacks: Tuple[int, ...] = DEFAULT_SLACKS
    #: Sweep execution: worker processes (None = --jobs / REPRO_JOBS /
    #: cpu count) and the on-disk result cache toggle.
    jobs: Optional[int] = None
    use_cache: bool = True
    #: Optional shared timing report (the CLI wires one in per figure).
    report: Optional[TimingReport] = None
    #: repro.obs: when set (CLI ``--trace DIR``), every cell exports a
    #: Perfetto trace + metric-series CSV under this directory, named
    #: by a slug of the cell's distinguishing fields.
    trace_dir: Optional[str] = None
    #: repro.faults: scenario name / plan applied to every cell (CLI
    #: ``--faults``), so any figure can be re-run under chaos.
    faults: FaultsLike = None

    @classmethod
    def from_env(cls) -> "FigureOptions":
        """Apply REPRO_BENCH_SCALE / REPRO_BENCH_WORKERS overrides."""
        options = cls()
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
        options.test_seconds *= scale
        options.trace_seconds = max(30, int(options.trace_seconds * scale))
        workers = os.environ.get("REPRO_BENCH_WORKERS")
        if workers:
            options.workers = int(workers)
        return options

    def base_config(self, **overrides) -> ExperimentConfig:
        config = ExperimentConfig(
            workers=self.workers,
            warmup_seconds=self.warmup_seconds,
            test_seconds=self.test_seconds,
            seed=self.seed,
            faults=self.faults,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config

    def run_cells(self, configs) -> List[ExperimentResult]:
        """Run a grid of independent cells through the sweep runner
        (parallel where possible, cached on disk, deterministic order)."""
        configs = list(configs)
        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
            seen: Dict[str, int] = {}
            for config in configs:
                slug = _cell_slug(config)
                n = seen.get(slug, 0)
                seen[slug] = n + 1
                if n:
                    slug = f"{slug}-{n}"
                config.trace_path = os.path.join(
                    self.trace_dir, f"{slug}.trace.json")
                config.trace_series_path = os.path.join(
                    self.trace_dir, f"{slug}.series.csv")
        runner = SweepRunner(jobs=self.jobs, use_cache=self.use_cache,
                             report=self.report)
        return runner.run(configs)


def _cell_slug(config: ExperimentConfig) -> str:
    """Filesystem-safe name for one cell's trace artifacts."""
    parts = [config.benchmark, config.scheme,
             f"load{config.load_fraction:g}", f"slack{config.slack:g}"]
    if config.routing != "rh-round-robin":
        parts.append(config.routing)
    if config.cstate_ladder != "c1":
        parts.append(config.cstate_ladder)
    if config.workload_policy != "per-type":
        parts.append(config.workload_policy)
    if config.topology != "per-core":
        parts.append(config.topology)
    if config.faults is not None:
        parts.append(
            f"faults_{getattr(config.faults, 'name', config.faults)}")
    if config.fleet is not None:
        if config.fleet.elastic:
            parts.append("fleet_elastic")
        else:
            active = config.fleet.static_active_replicas
            if active is None:
                active = config.fleet.replicas_per_shard
            nodes = config.fleet.shards * (1 + active)
            parts.append(f"fleet_static{nodes}")
    return "-".join(str(p).replace("/", "_") for p in parts)


# ----------------------------------------------------------------------
# Shared sweep machinery (Figures 6, 7, 8, 9, 12)
# ----------------------------------------------------------------------
@dataclass
class SlackSweepResult:
    """Power and failure-rate series per scheme, over the slack axis."""

    title: str
    slacks: Tuple[int, ...]
    #: scheme label -> [(power, failure), ...] aligned with ``slacks``.
    series: Dict[str, List[Tuple[float, float]]]
    results: List[ExperimentResult] = field(default_factory=list)

    def power(self, label: str) -> List[float]:
        return [p for p, _ in self.series[label]]

    def failure(self, label: str) -> List[float]:
        return [f for _, f in self.series[label]]

    def render(self) -> str:
        out = [self.title, ""]
        out.append(format_table(
            ["scheme"] + [f"slack={s}" for s in self.slacks],
            [[label] + [f"{p:.1f}W/{f:.3f}" for p, f in points]
             for label, points in self.series.items()],
            title="avg power (W) / failure rate vs slack"))
        return "\n".join(out)


def slack_sweep(benchmark: str, load_fraction: float,
                schemes: Sequence[str], options: FigureOptions,
                title: str, **config_overrides) -> SlackSweepResult:
    """Run the (scheme x slack) grid the paper's slack figures plot.

    The grid is laid out scheme-major, slack-minor and dispatched as one
    batch of independent cells, so the sweep runner can fan it out over
    worker processes; cell order (and therefore rendered output) is
    identical to the historical serial loop.
    """
    grid = [options.base_config(
                benchmark=benchmark, scheme=scheme,
                load_fraction=load_fraction, slack=float(slack),
                **config_overrides)
            for scheme in schemes for slack in options.slacks]
    results = options.run_cells(grid)
    series: Dict[str, List[Tuple[float, float]]] = {}
    cursor = iter(results)
    for scheme in schemes:
        points: List[Tuple[float, float]] = []
        label = scheme
        for _slack in options.slacks:
            result = next(cursor)
            label = result.scheme_label
            points.append((result.avg_power_watts, result.failure_rate))
        series[label] = points
    return SlackSweepResult(title, tuple(options.slacks), series, results)


# ----------------------------------------------------------------------
# Figure 3: TPC-C execution-time table
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    """Measured mean/P95 execution times at max and min frequency."""

    #: type -> (mean_28, p95_28, mean_12, p95_12) in microseconds.
    rows: Dict[str, Tuple[float, float, float, float]]

    def render(self) -> str:
        header = ["Request Type", "Mean@2.8", "P95@2.8", "Mean@1.2",
                  "P95@1.2", "paper Mean@2.8", "paper P95@2.8"]
        table_rows = []
        for name, row in self.rows.items():
            paper = FIGURE3_CALIBRATION.get(name)
            paper_cells = [f"{paper[1] * 1e6:.0f}", f"{paper[2] * 1e6:.0f}"] \
                if paper else ["-", "-"]
            table_rows.append([name] + [f"{v:.0f}" for v in row]
                              + paper_cells)
        return format_table(
            header, table_rows,
            title="Figure 3: TPC-C execution times (us) at max/min frequency")


def fig3_exec_times(options: Optional[FigureOptions] = None) -> Fig3Result:
    """Regenerate the Figure 3 table by measuring executed transactions.

    Runs the server pinned at 2.8 and then at 1.2 GHz under light load
    and collects each type's measured execution-time distribution from
    the latency recorder (a recorder-level run; the figure needs raw
    exec times, which ExperimentResult summarizes away).
    """
    options = options or FigureOptions.from_env()
    rows: Dict[str, Tuple[float, float, float, float]] = {}
    measured: Dict[float, Dict[str, Tuple[float, float]]] = {}
    combined: Dict[float, Tuple[float, float]] = {}
    from repro.harness.experiment import BENCHMARKS  # local import
    from repro.metrics.latency import LatencyRecorder
    from repro.db.server import DatabaseServer, ServerConfig
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.workloads.arrivals import OpenLoopGenerator
    from repro.core.workload import WorkloadManager

    spec = BENCHMARKS["tpcc"]()
    for freq in (2.8, 1.2):
        sim = Simulator()
        # A spawn()-ed child registry: the measurement sim reuses the
        # canonical stream names below, and without the namespace its
        # derived seeds would be byte-identical to the main experiment
        # streams at the same master seed (reprolint RL111) --- Figure 3
        # would share draw sequences with every sweep cell.  The two
        # frequency passes still pair (same child seed both times).
        streams = RandomStreams(options.seed).spawn("fig3-measured")
        server_config = ServerConfig(workers=options.workers)
        server = DatabaseServer(sim, server_config, scheduler_factory=None,
                                initial_freq=freq)
        manager = WorkloadManager.per_type_with_slack(spec, 1000.0)
        recorder = LatencyRecorder()
        recorder.recording = True
        server.add_completion_listener(recorder.on_completion)
        service_rng = streams.get("service-times")

        def on_arrival(now: float,
                       _spec=spec, _mgr=manager, _srv=server,
                       _rng=service_rng, _streams=streams) -> None:
            txn_type = _spec.choose_type(_streams.get("mix"))
            workload = _mgr.get(txn_type.name)
            _srv.submit(Request(workload, txn_type.name, now,
                                txn_type.service.draw_work(_rng)))

        rate = 0.3 * spec.peak_throughput(options.workers) * (freq / 2.8)
        generator = OpenLoopGenerator.constant(
            sim, rate, on_arrival, streams.get("arrivals"))
        generator.start()
        sim.run(until=options.test_seconds * 2)
        per_type: Dict[str, Tuple[float, float]] = {}
        for txn_type in spec.types:
            mean, p95, count = recorder.exec_time_stats(txn_type.name, freq)
            per_type[txn_type.name] = (mean, p95)
        measured[freq] = per_type
        mean, p95, _count = recorder.combined_exec_time_stats(freq)
        combined[freq] = (mean, p95)

    for txn_type in spec.types:
        m28, p28 = measured[2.8][txn_type.name]
        m12, p12 = measured[1.2][txn_type.name]
        rows[txn_type.name] = (m28 * 1e6, p28 * 1e6, m12 * 1e6, p12 * 1e6)
    rows["Combined"] = (combined[2.8][0] * 1e6, combined[2.8][1] * 1e6,
                        combined[1.2][0] * 1e6, combined[1.2][1] * 1e6)
    return Fig3Result(rows)


# ----------------------------------------------------------------------
# Figures 6-9: slack sweeps at three load levels, two benchmarks
# ----------------------------------------------------------------------
def fig6_tpcc_medium(options: Optional[FigureOptions] = None
                     ) -> SlackSweepResult:
    """Figure 6: TPC-C, medium load (60% of peak)."""
    options = options or FigureOptions.from_env()
    return slack_sweep("tpcc", 0.6, FIGURE_BASELINE_SCHEMES, options,
                       "Figure 6: TPC-C medium load")


def fig7_tpce_medium(options: Optional[FigureOptions] = None
                     ) -> SlackSweepResult:
    """Figure 7: TPC-E, medium load, ten per-type workloads."""
    options = options or FigureOptions.from_env()
    return slack_sweep("tpce", 0.6, FIGURE_BASELINE_SCHEMES, options,
                       "Figure 7: TPC-E medium load")


def fig8_tpcc_low(options: Optional[FigureOptions] = None
                  ) -> SlackSweepResult:
    """Figure 8: TPC-C, low load (30% of peak)."""
    options = options or FigureOptions.from_env()
    return slack_sweep("tpcc", 0.3, FIGURE_BASELINE_SCHEMES, options,
                       "Figure 8: TPC-C low load")


def fig9_tpcc_high(options: Optional[FigureOptions] = None
                   ) -> SlackSweepResult:
    """Figure 9: TPC-C, high load (90% of peak).

    The paper's Figure 9 plots only the 2.8 GHz static baseline (2.4
    saturates at this load), so the line-up drops static-2.4.
    """
    options = options or FigureOptions.from_env()
    schemes = tuple(s for s in FIGURE_BASELINE_SCHEMES if s != "static-2.4")
    return slack_sweep("tpcc", 0.9, schemes, options,
                       "Figure 9: TPC-C high load")


# ----------------------------------------------------------------------
# Figure 10: World Cup time-varying load
# ----------------------------------------------------------------------
@dataclass
class Fig10Result:
    """Trace experiment: summary table plus normalized timelines."""

    trace: List[float]
    #: scheme label -> (avg power, failure rate)
    summary: Dict[str, Tuple[float, float]]
    #: scheme label -> (bin centre, watts) series (5 s bins)
    timelines: Dict[str, List[Tuple[float, float]]]

    def render(self) -> str:
        out = ["Figure 10: World Cup trace (time-varying load)", ""]
        out.append(format_table(
            ["Baseline", "Avg. Power (Watt)", "Failure Rate"],
            [[label, f"{p:.1f}", f"{f:.2f}"]
             for label, (p, f) in self.summary.items()],
            title="(b) average power and failure rate"))
        out.append("")
        out.append("(a) normalized timelines (5 s bins)")
        out.append("  load : " + sparkline(self.trace))
        for label, series in self.timelines.items():
            out.append(f"  {label:12s} power: "
                       + sparkline([w for _, w in series]))
        return "\n".join(out)


def fig10_worldcup(options: Optional[FigureOptions] = None) -> Fig10Result:
    """Figure 10: TPC-C driven by the World Cup-style trace.

    The target rate sweeps 30%..90% of peak, reset each second from the
    normalized trace (Section 6.4); slack-50 per-type latency targets
    sit between the paper's tight and loose settings.
    """
    options = options or FigureOptions.from_env()
    trace = synthesize_worldcup_trace(options.trace_seconds,
                                      random.Random(options.seed))
    configs = [options.base_config(
                   benchmark="tpcc", scheme=scheme, slack=50.0,
                   load_trace=trace)
               for scheme in ("conservative", "ondemand", "polaris")]
    summary: Dict[str, Tuple[float, float]] = {}
    timelines: Dict[str, List[Tuple[float, float]]] = {}
    for result in options.run_cells(configs):
        summary[result.scheme_label] = (result.avg_power_watts,
                                        result.failure_rate)
        timelines[result.scheme_label] = result.power_timeline
    return Fig10Result(trace, summary, timelines)


# ----------------------------------------------------------------------
# Figure 11: gold/silver workload differentiation
# ----------------------------------------------------------------------
@dataclass
class Fig11Result:
    """Per-tier failure rate against total power, per scheme."""

    #: (scheme label, tier) -> failure rate
    failures: Dict[Tuple[str, str], float]
    #: scheme label -> average power
    power: Dict[str, float]
    gold_target_ms: float
    silver_target_ms: float

    def render(self) -> str:
        rows = []
        for (label, tier), failure in sorted(self.failures.items()):
            rows.append([f"{label}-{tier}", f"{self.power[label]:.1f}",
                         f"{failure:.3f}"])
        return format_table(
            ["scheme-tier", "power (W)", "failure rate"], rows,
            title=(f"Figure 11: workload differentiation "
                   f"(gold {self.gold_target_ms:g} ms / "
                   f"silver {self.silver_target_ms:g} ms targets)"))

    def gap(self, label: str) -> float:
        """Gold-minus-silver failure gap for one scheme."""
        return self.failures[(label, "gold")] \
            - self.failures[(label, "silver")]


def fig11_differentiation(options: Optional[FigureOptions] = None
                          ) -> Fig11Result:
    """Figure 11: two full-mix TPC-C workloads with 7.5/37.5 ms targets.

    Each tier receives half the medium-load request rate; only POLARIS
    can treat them differently.
    """
    options = options or FigureOptions.from_env()
    gold_ms, silver_ms = 7.5, 37.5
    configs = [options.base_config(
                   benchmark="tpcc", scheme=scheme, load_fraction=0.6,
                   workload_policy="tiers",
                   tier_targets={"gold": gold_ms * 1e-3,
                                 "silver": silver_ms * 1e-3})
               for scheme in ("polaris", "ondemand", "conservative",
                              "static-2.8")]
    failures: Dict[Tuple[str, str], float] = {}
    power: Dict[str, float] = {}
    for result in options.run_cells(configs):
        power[result.scheme_label] = result.avg_power_watts
        for tier in ("gold", "silver"):
            failures[(result.scheme_label, tier)] = \
                result.per_workload_failure.get(tier, 0.0)
    return Fig11Result(failures, power, gold_ms, silver_ms)


# ----------------------------------------------------------------------
# Figure 12: component analysis (POLARIS variants)
# ----------------------------------------------------------------------
def fig12_variants(options: Optional[FigureOptions] = None
                   ) -> SlackSweepResult:
    """Figure 12: POLARIS vs POLARIS-FIFO vs POLARIS-FIFO-NOARRIVE."""
    options = options or FigureOptions.from_env()
    return slack_sweep("tpcc", 0.6, VARIANT_SCHEMES, options,
                       "Figure 12: POLARIS component analysis (medium load)")


# ----------------------------------------------------------------------
# Extension (Section 8): routing policies x C-state ladders
# ----------------------------------------------------------------------
PARKING_GRID = (
    ("rh-round-robin", "c1"),
    ("rh-round-robin", "deep"),
    ("least-loaded", "c1"),
    ("least-loaded", "deep"),
    ("packing", "c1"),
    ("packing", "deep"),
)


@dataclass
class ParkingResult:
    """Power/failure per (routing, C-state ladder) cell."""

    #: (routing, ladder) -> (power watts, failure rate)
    cells: Dict[Tuple[str, str], Tuple[float, float]]

    def render(self) -> str:
        return format_table(
            ["routing", "C-states", "power (W)", "failure rate"],
            [[routing, ladder, f"{w:.1f}", f"{f:.3f}"]
             for (routing, ladder), (w, f) in self.cells.items()],
            title="Extension (Section 8): routing x C-states, POLARIS, "
                  "TPC-C low load, slack 10")

    def power(self, routing: str, ladder: str) -> float:
        return self.cells[(routing, ladder)][0]

    def failure(self, routing: str, ladder: str) -> float:
        return self.cells[(routing, ladder)][1]


def extension_worker_parking(options: Optional[FigureOptions] = None
                             ) -> ParkingResult:
    """The Section 8 sketch, measured: request distribution x C-states.

    POLARIS at low load (where parking should matter most), tight
    slack.  See EXPERIMENTS.md for the findings --- including the
    negative result that packing loses under per-core DVFS.
    """
    options = options or FigureOptions.from_env()
    configs = [options.base_config(
                   benchmark="tpcc", scheme="polaris", load_fraction=0.3,
                   slack=10.0, routing=routing, cstate_ladder=ladder)
               for routing, ladder in PARKING_GRID]
    cells: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for (routing, ladder), result in zip(PARKING_GRID,
                                         options.run_cells(configs)):
        cells[(routing, ladder)] = (result.avg_power_watts,
                                    result.failure_rate)
    return ParkingResult(cells)


# ----------------------------------------------------------------------
# Resilience: fault scenarios x schemes (repro.faults)
# ----------------------------------------------------------------------
#: Scenario columns of the resilience figure ("none" is the healthy
#: reference cell; the rest are the repro.faults scenario library).
RESILIENCE_SCENARIOS = ("none", "burst", "brownout", "sticky-pstate",
                        "dying-core")

#: Schemes compared under chaos: POLARIS (with the degradation policies
#: each scenario arms), the reactive governor, and the paper's static
#: baseline.
RESILIENCE_SCHEMES = ("polaris", "ondemand", "static-2.8")


@dataclass
class ResilienceResult:
    """Failure rate and power per (scheme, fault scenario) cell."""

    title: str
    scenarios: Tuple[str, ...]
    #: scheme label -> [(power, failure), ...] aligned with ``scenarios``.
    series: Dict[str, List[Tuple[float, float]]]
    #: (scheme label, scenario) -> non-zero degradation action counts.
    actions: Dict[Tuple[str, str], Dict[str, int]]
    results: List[ExperimentResult] = field(default_factory=list)

    def failure(self, label: str) -> List[float]:
        return [f for _, f in self.series[label]]

    def power(self, label: str) -> List[float]:
        return [p for p, _ in self.series[label]]

    def render(self) -> str:
        out = [self.title, ""]
        out.append(format_table(
            ["scheme"] + list(self.scenarios),
            [[label] + [f"{p:.1f}W/{f:.3f}" for p, f in points]
             for label, points in self.series.items()],
            title="avg power (W) / failure rate vs fault scenario"))
        action_rows = [
            [label, scenario,
             " ".join(f"{k}={v}" for k, v in sorted(counts.items()))]
            for (label, scenario), counts in self.actions.items() if counts]
        if action_rows:
            out.append("")
            out.append(format_table(
                ["scheme", "scenario", "degradation actions"], action_rows,
                title="graceful-degradation activity"))
        return "\n".join(out)


def resilience_figure(options: Optional[FigureOptions] = None
                      ) -> ResilienceResult:
    """The chaos matrix: every scenario against every scheme.

    TPC-C at medium load with the default slack; the ``none`` column is
    the healthy run the scenarios degrade from.  POLARIS cells exercise
    the scenario-armed degradation policies (shedding, DVFS retry,
    watchdog migration, panic mode); the governor/static cells show what
    the same faults do without a deadline-aware scheduler.
    """
    options = options or FigureOptions.from_env()
    grid = [options.base_config(
                benchmark="tpcc", scheme=scheme, load_fraction=0.6,
                slack=40.0,
                faults=None if scenario == "none" else scenario)
            for scheme in RESILIENCE_SCHEMES
            for scenario in RESILIENCE_SCENARIOS]
    results = options.run_cells(grid)
    series: Dict[str, List[Tuple[float, float]]] = {}
    actions: Dict[Tuple[str, str], Dict[str, int]] = {}
    cursor = iter(results)
    for _scheme in RESILIENCE_SCHEMES:
        points: List[Tuple[float, float]] = []
        label = _scheme
        for scenario in RESILIENCE_SCENARIOS:
            result = next(cursor)
            label = result.scheme_label
            points.append((result.avg_power_watts, result.failure_rate))
            actions[(label, scenario)] = dict(result.degradation_actions)
        series[label] = points
    return ResilienceResult(
        "Resilience: fault scenarios x schemes (TPC-C medium load)",
        tuple(RESILIENCE_SCENARIOS), series, actions, results)


# ----------------------------------------------------------------------
# Scheduler arena: the whole speed-scaling family in one tournament
# ----------------------------------------------------------------------
#: Workload columns of the arena (one per benchmark family).
ARENA_BENCHMARKS = ("tpcc", "tpce", "ycsb-b")

#: Load levels swept per workload (fractions of saturation).
ARENA_LOADS = (0.3, 0.6, 0.9)

#: Extra arena rounds under repro.faults chaos (TPC-C, medium load).
ARENA_FAULT_ROUNDS = ("burst", "dying-core")

#: Slack used throughout the arena (the mid slack of Figures 6-8).
ARENA_SLACK = 40.0


@dataclass
class ArenaResult:
    """Power/failure per (scheme, workload, load) plus fault rounds.

    The tournament scores every scheme on two axes at once: average
    power (efficiency) and deadline-failure rate (robustness).  Per
    (workload, load) column the *frontier* is the set of
    Pareto-efficient schemes --- nobody else is at least as good on
    both axes and strictly better on one.
    """

    title: str
    schemes: Tuple[str, ...]  # labels, arena order
    benchmarks: Tuple[str, ...]
    loads: Tuple[float, ...]
    fault_rounds: Tuple[str, ...]
    #: (scheme label, benchmark, load) -> (power W, failure rate).
    cells: Dict[Tuple[str, str, float], Tuple[float, float]]
    #: (scheme label, fault scenario) -> (power W, failure rate).
    fault_cells: Dict[Tuple[str, str], Tuple[float, float]]
    results: List[ExperimentResult] = field(default_factory=list)

    def power(self, label: str, benchmark: str, load: float) -> float:
        return self.cells[(label, benchmark, load)][0]

    def failure(self, label: str, benchmark: str, load: float) -> float:
        return self.cells[(label, benchmark, load)][1]

    def frontier(self, benchmark: str, load: float) -> List[str]:
        """Pareto-efficient scheme labels for one (workload, load) cell."""
        points = [(label, *self.cells[(label, benchmark, load)])
                  for label in self.schemes]
        out = []
        for label, p, f in points:
            dominated = any(
                op <= p + 1e-12 and of <= f + 1e-12
                and (op < p - 1e-12 or of < f - 1e-12)
                for other, op, of in points if other != label)
            if not dominated:
                out.append(label)
        return out

    def render(self) -> str:
        out = [self.title, ""]
        for benchmark in self.benchmarks:
            out.append(format_table(
                ["scheme"] + [f"load {load:g}" for load in self.loads],
                [[label] + [f"{p:.1f}W/{f:.3f}"
                            for p, f in (self.cells[(label, benchmark, load)]
                                         for load in self.loads)]
                 for label in self.schemes],
                title=f"{benchmark}: avg power (W) / failure rate vs load"))
            out.append("")
        out.append(format_table(
            ["workload", "load", "power/miss frontier"],
            [[benchmark, f"{load:g}",
              ", ".join(self.frontier(benchmark, load))]
             for benchmark in self.benchmarks for load in self.loads],
            title="Pareto frontiers (power vs deadline misses)"))
        if self.fault_cells:
            out.append("")
            out.append(format_table(
                ["scheme"] + list(self.fault_rounds),
                [[label] + [f"{p:.1f}W/{f:.3f}"
                            for p, f in (self.fault_cells[(label, scenario)]
                                         for scenario in self.fault_rounds)]
                 for label in self.schemes],
                title="fault rounds (TPC-C, medium load): "
                      "avg power (W) / failure rate"))
        return "\n".join(out)


def arena_tournament(options: Optional[FigureOptions] = None) -> ArenaResult:
    """The scheduler-arena tournament: scheme x workload x load grid.

    Every scheme in :data:`~repro.harness.schemes.ARENA_SCHEMES` ---
    POLARIS, the online qOA-style and AVR schedulers promoted from the
    theory oracles, the nonclairvoyant scaler, the reactive governors,
    and the flat-out baseline --- runs against each workload at each
    load level, then replays the fault rounds (burst, dying-core) on
    TPC-C at medium load so robustness is scored next to efficiency.
    """
    options = options or FigureOptions.from_env()
    grid = [options.base_config(
                benchmark=benchmark, scheme=scheme, load_fraction=load,
                slack=ARENA_SLACK)
            for scheme in ARENA_SCHEMES
            for benchmark in ARENA_BENCHMARKS
            for load in ARENA_LOADS]
    fault_grid = [options.base_config(
                      benchmark="tpcc", scheme=scheme, load_fraction=0.6,
                      slack=ARENA_SLACK, faults=scenario)
                  for scheme in ARENA_SCHEMES
                  for scenario in ARENA_FAULT_ROUNDS]
    results = options.run_cells(grid + fault_grid)
    labels: List[str] = []
    cells: Dict[Tuple[str, str, float], Tuple[float, float]] = {}
    fault_cells: Dict[Tuple[str, str], Tuple[float, float]] = {}
    cursor = iter(results)
    for _scheme in ARENA_SCHEMES:
        label = None
        for benchmark in ARENA_BENCHMARKS:
            for load in ARENA_LOADS:
                result = next(cursor)
                label = result.scheme_label
                cells[(label, benchmark, load)] = (
                    result.avg_power_watts, result.failure_rate)
        labels.append(label)
    for label in labels:
        for scenario in ARENA_FAULT_ROUNDS:
            result = next(cursor)
            fault_cells[(label, scenario)] = (
                result.avg_power_watts, result.failure_rate)
    return ArenaResult(
        "Scheduler arena: speed-scaling family tournament "
        f"(slack {ARENA_SLACK:g} ms)",
        tuple(labels), tuple(ARENA_BENCHMARKS), tuple(ARENA_LOADS),
        tuple(ARENA_FAULT_ROUNDS), cells, fault_cells, results)


# ----------------------------------------------------------------------
# Frequency-domain granularity: the cost of coarse DVFS
# ----------------------------------------------------------------------
#: Granularity columns of the figure ("per-core" is the paper's
#: assumption; "per-socket" couples the testbed's 8-core packages).
GRANULARITY_AXIS = ("per-core", "per-socket")

#: Schemes compared across granularities: the in-DBMS scheduler and the
#: two reactive OS governors, whose per-core decisions become domain
#: votes under coarse topologies.
GRANULARITY_SCHEMES = ("polaris", "ondemand", "conservative")

#: Shared-domain P-state switch stall used for the coarse cells.  The
#: paper measures sub-microsecond *per-core* MSR switches; re-locking a
#: package-wide PLL goes through firmware coordination and stalls every
#: member core for tens of microseconds (Mazouz et al. measure 20-70 us
#: on Haswell-generation parts), so the coarse cells pay 50 us.
DOMAIN_SWITCH_LATENCY_S = 50e-6


@dataclass
class GranularityResult:
    """Power/failure per (scheme, granularity) over the slack axis."""

    title: str
    slacks: Tuple[int, ...]
    #: (scheme label, granularity) -> [(power, failure), ...] per slack.
    series: Dict[Tuple[str, str], List[Tuple[float, float]]]
    results: List[ExperimentResult] = field(default_factory=list)

    def power(self, label: str, granularity: str) -> List[float]:
        return [p for p, _ in self.series[(label, granularity)]]

    def failure(self, label: str, granularity: str) -> List[float]:
        return [f for _, f in self.series[(label, granularity)]]

    def power_gap(self, label: str) -> float:
        """Mean extra watts the per-socket domain draws vs per-core."""
        coarse = self.power(label, "per-socket")
        fine = self.power(label, "per-core")
        return sum(c - f for c, f in zip(coarse, fine)) / len(fine)

    def failure_gap(self, label: str) -> float:
        """Mean failure-rate difference, per-socket minus per-core."""
        coarse = self.failure(label, "per-socket")
        fine = self.failure(label, "per-core")
        return sum(c - f for c, f in zip(coarse, fine)) / len(fine)

    def labels(self) -> List[str]:
        seen: List[str] = []
        for label, _granularity in self.series:
            if label not in seen:
                seen.append(label)
        return seen

    def render(self) -> str:
        out = [self.title, ""]
        out.append(format_table(
            ["scheme", "domains"] + [f"slack={s}" for s in self.slacks],
            [[label, granularity]
             + [f"{p:.1f}W/{f:.3f}" for p, f in points]
             for (label, granularity), points in self.series.items()],
            title="avg power (W) / failure rate vs slack"))
        out.append("")
        out.append(format_table(
            ["scheme", "power gap (W)", "failure gap"],
            [[label, f"{self.power_gap(label):+.2f}",
              f"{self.failure_gap(label):+.4f}"]
             for label in self.labels()],
            title="cost of coarse DVFS (per-socket minus per-core, "
                  "mean over slacks)"))
        return "\n".join(out)


def granularity_figure(options: Optional[FigureOptions] = None
                       ) -> GranularityResult:
    """The cost of coarse DVFS: scheme x frequency-domain granularity.

    The Figure 6 setting (TPC-C, medium load, slack axis) re-run with
    the testbed's cores coupled into per-socket frequency domains.
    Under the cpufreq max-of-votes rule one urgent transaction raises
    all eight cores of its package, so deadline-aware scaling loses
    much of its per-core advantage: per-socket POLARIS draws at least
    as much power at an equal-or-worse miss ratio.  The rendered gap
    table quantifies that cost per scheme.
    """
    options = options or FigureOptions.from_env()
    grid = [options.base_config(
                benchmark="tpcc", scheme=scheme, load_fraction=0.6,
                slack=float(slack), topology=granularity,
                topology_switch_latency=(
                    0.0 if granularity == "per-core"
                    else DOMAIN_SWITCH_LATENCY_S))
            for scheme in GRANULARITY_SCHEMES
            for granularity in GRANULARITY_AXIS
            for slack in options.slacks]
    results = options.run_cells(grid)
    series: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    cursor = iter(results)
    for _scheme in GRANULARITY_SCHEMES:
        for granularity in GRANULARITY_AXIS:
            points: List[Tuple[float, float]] = []
            label = _scheme
            for _slack in options.slacks:
                result = next(cursor)
                label = result.scheme_label
                points.append((result.avg_power_watts,
                               result.failure_rate))
            series[(label, granularity)] = points
    return GranularityResult(
        "Frequency-domain granularity: the cost of coarse DVFS "
        "(TPC-C medium load)",
        tuple(options.slacks), series, results)


# ----------------------------------------------------------------------
# Fleet extension: elastic vs static-N provisioning frontier
# ----------------------------------------------------------------------
def _step_bins(timeline: Sequence[Tuple[float, float]], start: float,
               end: float, bins: int) -> List[float]:
    """Sample a (time, value) step series at ``bins`` bin centres."""
    if not timeline or bins < 1 or end <= start:
        return []
    width = (end - start) / bins
    values: List[float] = []
    for i in range(bins):
        centre = start + (i + 0.5) * width
        value = timeline[0][1]
        for time_s, v in timeline:
            if time_s > centre:
                break
            value = v
        values.append(value)
    return values


@dataclass
class FleetFrontierResult:
    """Elastic vs static-N fleet provisioning under a diurnal trace."""

    title: str
    trace: List[float]
    peak_rate_tps: float
    #: cell label -> (avg fleet power W, overall failure rate)
    summary: Dict[str, Tuple[float, float]]
    #: cell label -> per-shard deadline-miss rates ("shard0"...)
    per_shard: Dict[str, Dict[str, float]]
    #: cell label -> router/controller action counters
    actions: Dict[str, Dict[str, int]]
    #: cell label -> (bin centre, watts) fleet power series
    timelines: Dict[str, List[Tuple[float, float]]]
    #: cell label -> (time, active nodes) step series
    node_timelines: Dict[str, List[Tuple[float, int]]]
    test_start: float
    test_end: float

    def power(self, label: str) -> float:
        return self.summary[label][0]

    def failure(self, label: str) -> float:
        return self.summary[label][1]

    def render(self) -> str:
        out = [self.title, ""]
        rows = []
        for label, (power, failure) in self.summary.items():
            shard_miss = self.per_shard[label]
            worst = max(shard_miss.values()) if shard_miss else 0.0
            acts = self.actions[label]
            rows.append([
                label, f"{power:.1f}", f"{failure:.4f}", f"{worst:.4f}",
                str(acts.get("stale_read_bounces", 0)),
                f"{acts.get('scale_out', 0)}/{acts.get('scale_in', 0)}",
            ])
        out.append(format_table(
            ["Fleet", "Avg. Power (Watt)", "Failure Rate",
             "Worst Shard Miss", "Stale Bounces", "Out/In"],
            rows, title="(b) provisioning frontier"))
        out.append("")
        out.append("(a) normalized timelines")
        out.append("  load  : " + sparkline(self.trace))
        for label, series in self.timelines.items():
            out.append(f"  {label:16s} power: "
                       + sparkline([w for _, w in series]))
        for label, timeline in self.node_timelines.items():
            bins = _step_bins(timeline, self.test_start, self.test_end,
                              max(len(self.trace) // 5, 8))
            if len(set(bins)) > 1:
                out.append(f"  {label:16s} nodes: " + sparkline(bins))
            else:
                count = bins[0] if bins else 0
                out.append(f"  {label:16s} nodes: constant {count:g}")
        return "\n".join(out)


def fleet_elastic_frontier(options: Optional[FigureOptions] = None
                           ) -> FleetFrontierResult:
    """Fleet extension: elastic autoscaling vs static provisioning.

    A sharded TPC-C fleet (two shards, one read replica each) driven by
    a 1000x-scaled diurnal trace.  The elastic cell lets the
    ElasticController park replicas through the troughs and boot them
    for the peaks; the static-N cells pin the fleet at every
    provisioning level.  All cells see bit-identical arrivals (load is
    expressed against the peak-provisioned fleet), so the frontier
    isolates what node-level scaling buys: elastic power lands strictly
    below the static peak at equal-or-better per-shard miss rates.
    Pins ``faults=None``: this frontier is the healthy reference the
    availability figure's chaos cells are held against.
    """
    options = options or FigureOptions.from_env()
    raw = synthesize_diurnal_trace(options.trace_seconds,
                                   random.Random(options.seed),
                                   peak_rate_scale=1000.0)
    trace = normalize(raw)
    shape = dict(shards=2, replicas_per_shard=1, node_workers=2)
    fleets = [FleetConfig(elastic=True, **shape)]
    for active in range(shape["replicas_per_shard"], -1, -1):
        fleets.append(FleetConfig(elastic=False,
                                  static_active_replicas=active, **shape))
    configs = [options.base_config(
                   benchmark="tpcc", scheme="polaris", slack=60.0,
                   load_trace=trace, trace_low_fraction=0.1,
                   trace_high_fraction=0.4, faults=None, fleet=fleet)
               for fleet in fleets]
    summary: Dict[str, Tuple[float, float]] = {}
    per_shard: Dict[str, Dict[str, float]] = {}
    actions: Dict[str, Dict[str, int]] = {}
    timelines: Dict[str, List[Tuple[float, float]]] = {}
    node_timelines: Dict[str, List[Tuple[float, int]]] = {}
    test_start = options.warmup_seconds
    test_end = test_start + len(trace)
    for result in options.run_cells(configs):
        label = result.scheme_label
        summary[label] = (result.avg_power_watts, result.failure_rate)
        per_shard[label] = result.per_shard_failure
        actions[label] = result.fleet_actions
        timelines[label] = result.power_timeline
        node_timelines[label] = result.node_timeline
    return FleetFrontierResult(
        "Fleet extension: elastic vs static provisioning "
        f"(sharded TPC-C, diurnal trace, peak {max(raw):.0f} txn/s)",
        trace, max(raw), summary, per_shard, actions, timelines,
        node_timelines, test_start, test_end)


# ----------------------------------------------------------------------
# Fleet availability: crash-per-shard chaos vs the failover machinery
# ----------------------------------------------------------------------
#: Cells of the availability figure, all on the same diurnal trace and
#: fleet shape as the provisioning frontier: the healthy reference, the
#: failover-enabled fleet under the crash-per-shard plan, the
#: no-failover baseline under the same plan, and a hot-spare variant
#: (``min_active_replicas=1``) that prices keeping a warm promotion
#: candidate per shard.
AVAILABILITY_CELLS = ("healthy", "failover", "no-failover", "hot-spare")


@dataclass
class AvailabilityResult:
    """MTTR / lost commits / tail latency / power per chaos cell."""

    title: str
    #: cell name -> :func:`repro.metrics.report.availability_record`.
    records: Dict[str, Dict[str, object]]
    #: cell name -> (time_s, shard_id, event, node_id) failover events.
    timelines: Dict[str, List[Tuple[float, int, str, int]]]
    results: List[ExperimentResult] = field(default_factory=list)

    def record(self, cell: str) -> Dict[str, object]:
        return self.records[cell]

    def render(self) -> str:
        out = [self.title, ""]
        out.append(availability_table(
            [self.records[cell] for cell in AVAILABILITY_CELLS
             if cell in self.records]))
        healthy = self.records.get("healthy")
        failover = self.records.get("failover")
        if healthy and failover:
            healthy_w = float(healthy["avg_power_watts"])  # type: ignore[arg-type]
            chaos_w = float(failover["avg_power_watts"])  # type: ignore[arg-type]
            out.append("")
            out.append(f"failover power delta vs healthy: "
                       f"{chaos_w - healthy_w:+.1f} W "
                       f"({(chaos_w / healthy_w - 1.0) * 100.0:+.2f}%)")
        for cell, timeline in self.timelines.items():
            if not timeline:
                continue
            steps = " ".join(f"{t:.2f}s:{event}(s{shard}->n{node})"
                             for t, shard, event, node in timeline)
            out.append(f"  {cell} failover timeline: {steps}")
        return "\n".join(out)


def availability_figure(options: Optional[FigureOptions] = None
                        ) -> AvailabilityResult:
    """Fleet availability under the crash-per-shard chaos plan.

    The same sharded TPC-C fleet and diurnal trace as
    :func:`fleet_elastic_frontier`, with the ``shard-crash`` scenario
    fail-stopping every shard's primary mid-run.  The failover cell
    detects each crash by heartbeat timeout, promotes the most-caught-up
    replica after a durable-WAL replay, and ends with zero unserved
    shards; the no-failover baseline sheds every write to a crashed
    shard for the rest of the run (availability goes to the crash
    point's fraction of the window).  The hot-spare cell holds one
    active replica per shard (``min_active_replicas=1``) so a promotion
    candidate is always warm --- its power premium is the figure's
    cost-of-availability axis.
    """
    options = options or FigureOptions.from_env()
    raw = synthesize_diurnal_trace(options.trace_seconds,
                                   random.Random(options.seed),
                                   peak_rate_scale=1000.0)
    trace = normalize(raw)
    shape = dict(shards=2, replicas_per_shard=1, node_workers=2)
    cells = [
        ("healthy", FleetConfig(elastic=True, **shape), None),
        ("failover", FleetConfig(elastic=True, **shape), "shard-crash"),
        ("no-failover",
         FleetConfig(elastic=True, failover_enabled=False, **shape),
         "shard-crash"),
        ("hot-spare",
         FleetConfig(elastic=True, min_active_replicas=1, **shape),
         "shard-crash"),
    ]
    configs = [options.base_config(
                   benchmark="tpcc", scheme="polaris", slack=60.0,
                   load_trace=trace, trace_low_fraction=0.1,
                   trace_high_fraction=0.4, faults=faults, fleet=fleet)
               for _name, fleet, faults in cells]
    results = options.run_cells(configs)
    records: Dict[str, Dict[str, object]] = {}
    timelines: Dict[str, List[Tuple[float, int, str, int]]] = {}
    for (name, _fleet, _faults), result in zip(cells, results):
        record = availability_record(result)
        record["label"] = name
        records[name] = record
        timelines[name] = list(result.failover_timeline)
    return AvailabilityResult(
        "Fleet availability: crash-per-shard chaos "
        f"(sharded TPC-C, diurnal trace, peak {max(raw):.0f} txn/s)",
        records, timelines, results)


# ----------------------------------------------------------------------
# Section 4: competitive-ratio verification
# ----------------------------------------------------------------------
@dataclass
class TheoryResult:
    """Empirical checks of the Section 4 competitive claims."""

    alpha: float
    agreeable_polaris_vs_oa: List[float]
    oa_vs_yds: List[float]
    avr_vs_yds: List[float]
    polaris_vs_yds_arbitrary: List[Tuple[float, float]]  # (ratio, bound)
    adversarial: Tuple[float, float, float]  # ratio, c^alpha, (c*alpha)^alpha
    #: Appendix C numerical checks: (instances checked, all claims held,
    #: worst event jump, worst drift violation).
    appendix_c: Tuple[int, bool, float, float] = (0, True, 0.0, 0.0)

    def render(self) -> str:
        out = [f"Section 4: competitive analysis (alpha={self.alpha:g})", ""]
        out.append(format_series(
            "Thm 4.3  POLARIS/OA on agreeable (must be 1.0)",
            range(1, len(self.agreeable_polaris_vs_oa) + 1),
            self.agreeable_polaris_vs_oa, "{:.6f}"))
        out.append(format_series(
            f"         OA/YDS (bound alpha^alpha = "
            f"{self.alpha ** self.alpha:.1f})",
            range(1, len(self.oa_vs_yds) + 1), self.oa_vs_yds))
        avr_bound = 2 ** (self.alpha - 1) * self.alpha ** self.alpha
        out.append(format_series(
            f"         AVR/YDS (bound 2^(a-1)*a^a = {avr_bound:.1f})",
            range(1, len(self.avr_vs_yds) + 1), self.avr_vs_yds))
        ratios = [r for r, _ in self.polaris_vs_yds_arbitrary]
        out.append(format_series(
            "Cor 4.6  POLARIS/YDS on arbitrary (each below its "
            "(c*alpha)^alpha bound)",
            range(1, len(ratios) + 1), ratios))
        ratio, c_alpha, bound = self.adversarial
        out.append(
            f"Sec 4.6  adversarial pair: POLARIS/YDS = {ratio:.3g}, "
            f"c^alpha = {c_alpha:.3g}, bound = {bound:.3g}")
        count, held, jump, drift = self.appendix_c
        out.append(
            f"App. C   potential-function claims on {count} instances: "
            f"{'ALL HOLD' if held else 'VIOLATED'} "
            f"(worst event jump {jump:.2g}, worst drift violation "
            f"{drift:.2g})")
        return "\n".join(out)


def theory_competitive(alpha: float = DEFAULT_ALPHA, trials: int = 5,
                       jobs: int = 10, seed: int = 11) -> TheoryResult:
    """Empirically verify Theorem 4.3, the OA bound, and Corollary 4.6."""
    rng = random.Random(seed)
    agreeable_ratios: List[float] = []
    oa_ratios: List[float] = []
    avr_ratios: List[float] = []
    arbitrary: List[Tuple[float, float]] = []
    for _ in range(trials):
        inst = random_agreeable_instance(jobs, rng)
        p_energy = polaris_ideal_schedule(inst).energy(alpha)
        o_energy = oa_schedule(inst).energy(alpha)
        agreeable_ratios.append(p_energy / o_energy)
    for _ in range(trials):
        inst = random_instance(jobs, rng)
        y = yds_energy(inst, alpha)
        oa_ratios.append(oa_schedule(inst).energy(alpha) / y)
        avr_ratios.append(avr_schedule(inst).energy(alpha) / y)
        ratio = polaris_ideal_schedule(inst).energy(alpha) / y
        bound = (inst.c_factor() * alpha) ** alpha
        arbitrary.append((ratio, bound))
    pair = adversarial_pair()
    pair_ratio = polaris_ideal_schedule(pair).energy(alpha) \
        / yds_energy(pair, alpha)
    c_alpha = pair.c_factor() ** alpha
    bound = (pair.c_factor() * alpha) ** alpha

    # Appendix C: potential-function claims along real trajectories.
    checked = 0
    all_hold = True
    worst_jump = worst_drift = 0.0
    for _ in range(max(2, trials // 2)):
        inst = random_instance(min(jobs, 7), rng)
        check = verify_theorem_4_4(inst, alpha=alpha)
        checked += 1
        all_hold = all_hold and check.all_claims_hold
        worst_jump = max(worst_jump, check.claim2_max_event_jump)
        worst_drift = max(worst_drift, check.claim3_max_violation)

    return TheoryResult(alpha, agreeable_ratios, oa_ratios, avr_ratios,
                        arbitrary, (pair_ratio, c_alpha, bound),
                        (checked, all_hold, worst_jump, worst_drift))


# ----------------------------------------------------------------------
# Section 5: SetProcessorFreq overhead vs queue length
# ----------------------------------------------------------------------
@dataclass
class OverheadResult:
    """Wall-clock cost of one SetProcessorFreq invocation by queue depth."""

    #: queue length -> microseconds per invocation
    micros: Dict[int, float]

    def render(self) -> str:
        return format_table(
            ["queue length", "us / invocation"],
            [[n, f"{us:.1f}"] for n, us in sorted(self.micros.items())],
            title="Section 5: SetProcessorFreq overhead (this host)")


def polaris_overhead(queue_lengths: Sequence[int] = (0, 1, 4, 16, 64, 256),
                     repeats: int = 200, seed: int = 3) -> OverheadResult:
    """Measure select_frequency wall time against queue depth.

    The paper measures ~10 us at high load on its testbed; absolute
    numbers here depend on the host, but the linear scaling in queue
    length is the claim being checked.
    """
    rng = random.Random(seed)
    frequencies = (1.2, 1.6, 2.0, 2.4, 2.8)
    estimator = ExecutionTimeEstimator()
    # Long targets and small estimates keep every queue feasible at the
    # lowest frequency, so the full O(|Q| x |F|) scan runs (no
    # max-frequency short-circuit).
    workload = Workload("w", latency_target=100.0)
    for freq in frequencies:
        estimator.prime("w", freq, 1e-5 * 2.8 / freq, count=10)
    micros: Dict[int, float] = {}
    for length in queue_lengths:
        scheduler = PolarisScheduler(frequencies, estimator)
        for _ in range(length):
            scheduler.enqueue(Request(workload, "t", rng.random(), 0.001))
        running = Request(workload, "t", 0.0, 0.001)
        start = perf_clock()
        for _ in range(repeats):
            scheduler.select_frequency(0.5, running, 0.0001)
        elapsed = perf_clock() - start
        micros[length] = elapsed / repeats * 1e6
    return OverheadResult(micros)
