"""Frequency-control schemes: POLARIS, its variants, and the baselines.

A scheme bundles what Section 6.1 calls a "method for controlling core
frequencies": either an in-DBMS scheduler (POLARIS and its two ablated
variants, which also take over transaction ordering) or an OS
governor over Shore-MT's default FIFO scheduling (the Linux dynamic
governors and the fixed-frequency baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.online import AvrScheduler, QoaScheduler
from repro.core.polaris import PolarisScheduler
from repro.core.variants import (
    PolarisFifoNoArriveScheduler, PolarisFifoScheduler, PolarisShedScheduler,
)
from repro.governors.base import Governor
from repro.governors.conservative import ConservativeGovernor
from repro.governors.nonclairvoyant import NonclairvoyantScheduler
from repro.governors.ondemand import OnDemandGovernor
from repro.governors.static import UserspaceGovernor


@dataclass(frozen=True)
class Scheme:
    """One frequency-control scheme.

    Exactly one of ``scheduler_class`` / ``governor_factory`` is set:
    in-DBMS schedulers replace both the transaction order and the
    frequency control; governor schemes keep FIFO dispatch and let the
    governor drive each core.
    """

    name: str
    label: str
    scheduler_class: Optional[type] = None
    governor_factory: Optional[Callable[[], Governor]] = None
    #: Initial core frequency (None = grid maximum).
    initial_freq: Optional[float] = None

    @property
    def uses_scheduler(self) -> bool:
        return self.scheduler_class is not None

    def make_scheduler_factory(self, frequencies: Tuple[float, ...],
                               estimator: ExecutionTimeEstimator
                               ) -> Callable[[], PolarisScheduler]:
        if self.scheduler_class is None:
            raise ValueError(f"scheme {self.name} has no scheduler")
        cls = self.scheduler_class
        return lambda: cls(frequencies, estimator)


def _static(freq: float) -> Scheme:
    # One-decimal formatting keeps the name identical to the registry
    # key for every grid frequency (``:g`` renders 2.0 as "2", making
    # "static-2.0"'s scheme answer to the name "static-2").
    return Scheme(
        name=f"static-{freq:.1f}",
        label=f"{freq:.1f} GHz",
        governor_factory=lambda: UserspaceGovernor(freq),
        initial_freq=freq,
    )


SCHEMES = {
    "polaris": Scheme("polaris", "POLARIS",
                      scheduler_class=PolarisScheduler),
    "polaris-fifo": Scheme("polaris-fifo", "POLARIS-FIFO",
                           scheduler_class=PolarisFifoScheduler),
    "polaris-fifo-noarrive": Scheme(
        "polaris-fifo-noarrive", "POLARIS-FIFO-NOARRIVE",
        scheduler_class=PolarisFifoNoArriveScheduler),
    "polaris-shed": Scheme("polaris-shed", "POLARIS-SHED",
                           scheduler_class=PolarisShedScheduler),
    "oa-online": Scheme("oa-online", "OA-Online",
                        scheduler_class=QoaScheduler),
    "avr-online": Scheme("avr-online", "AVR-Online",
                         scheduler_class=AvrScheduler),
    "nonclairvoyant": Scheme("nonclairvoyant", "Nonclairvoyant",
                             scheduler_class=NonclairvoyantScheduler),
    "ondemand": Scheme("ondemand", "OnDemand",
                       governor_factory=OnDemandGovernor),
    "conservative": Scheme("conservative", "Conservative",
                           governor_factory=ConservativeGovernor),
    "static-2.8": _static(2.8),
    "static-2.4": _static(2.4),
    "static-2.0": _static(2.0),
    "static-1.6": _static(1.6),
    "static-1.2": _static(1.2),
}


def scheme_named(name: str) -> Scheme:
    """Scheme lookup with a helpful error."""
    scheme = SCHEMES.get(name)
    if scheme is None:
        raise KeyError(
            f"unknown scheme {name!r}; available: {sorted(SCHEMES)}")
    return scheme


#: The scheme line-up of Figures 6-8 (POLARIS, dynamic governors,
#: two highest static frequencies).
FIGURE_BASELINE_SCHEMES = ("polaris", "ondemand", "conservative",
                           "static-2.8", "static-2.4")

#: The component-analysis line-up of Figure 12.
VARIANT_SCHEMES = ("polaris", "polaris-fifo", "polaris-fifo-noarrive")

#: The scheduler-arena tournament line-up: POLARIS next to the rest of
#: the speed-scaling family (online qOA-style and AVR promoted from the
#: theory oracles, the nonclairvoyant scaler), the dynamic governors,
#: and the flat-out baseline.
ARENA_SCHEMES = ("polaris", "oa-online", "avr-online", "nonclairvoyant",
                 "ondemand", "conservative", "static-2.8")
