"""Run one experimental configuration through the paper's methodology.

Each run follows Section 6.1's three phases:

1. **Warmup** --- the server executes offered load with nothing recorded
   (the paper warms each worker with 30,000 transactions; here a time
   window, since load levels are rate-controlled).
2. **Training** --- POLARIS's execution-time estimators are initialized
   "by filling the initial sliding window for each frequency level and
   request type combination".  The harness fills each window with draws
   from the calibrated service model at the corresponding frequency,
   which is what running the training transactions at each level would
   measure.
3. **Test** --- power and performance are measured: mean wall power over
   the phase (one-second meter samples) and the failure rate over
   requests *arriving* in the phase (the simulation drains afterwards so
   stragglers count as failures rather than being censored).

Loads are expressed as fractions of the server's peak throughput,
derived from the service-time model exactly as the paper derives its
60%/30%/90% levels from measured peak throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.request import Request
from repro.core.workload import Workload, WorkloadManager
from repro.cpu.topology import SocketTopology, make_topology
from repro.db.server import DatabaseServer, ServerConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultsLike, resolve_fault_plan
from repro.faults.resilience import ResilienceController
from repro.fleet.config import FleetConfig
from repro.governors.base import GovernorSet
from repro.harness.profiling import perf_clock
from repro.harness.schemes import scheme_named
from repro.metrics.latency import LatencyRecorder
from repro.metrics.power import PowerMeter
from repro.obs.export import export_chrome_trace, export_series_csv
from repro.obs.metrics import MetricRegistry, MetricsSampler
from repro.obs.trace import NULL_TRACER, Tracer, trace_enabled
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads import tpcc, tpce, ycsb
from repro.workloads.arrivals import OpenLoopGenerator, RateSchedule
from repro.workloads.base import BenchmarkSpec

#: benchmark name -> spec factory.
BENCHMARKS: Dict[str, Callable[[], BenchmarkSpec]] = {
    "tpcc": lambda: tpcc.make_spec(include_bodies=False),
    "tpce": lambda: tpce.make_spec(include_bodies=False),
}
# YCSB core workloads (the Section 8 key-value target): ycsb-a .. ycsb-f.
for _letter in "abcdef":
    BENCHMARKS[f"ycsb-{_letter}"] = (
        lambda letter=_letter: ycsb.make_spec(letter, include_bodies=False))

#: Load calibration.  The paper expresses loads as fractions of the
#: *measured* peak throughput of its testbed.  That measurement embeds
#: hyperthread and request-handler interference, which grows with load:
#: the paper's own numbers (peak 21250 txn/s over 16 workers against a
#: 1.2-1.6 ms mean transaction time) imply per-worker utilization above
#: what isolated workers could sustain, i.e. effective service times
#: under load exceed the Figure 3 times used to set deadlines.  The
#: simulator's workers are isolated, so a nominal fraction of measured
#: peak maps onto a *higher* fraction of isolated-worker capacity, and
#: increasingly so at higher load.  The anchors below are fitted so the
#: 2.8 GHz static baseline reproduces the paper's failure-rate levels
#: at each of its three load settings (Figures 6, 8, 9): ~15% at
#: medium / slack 10, near zero at low, and intermittent saturation
#: (not sustained overload) at high.
LOAD_ANCHORS = ((0.0, 0.0), (0.3, 0.27), (0.6, 0.75), (0.9, 0.92),
                (1.0, 0.97))


def effective_load_fraction(nominal: float) -> float:
    """Map a paper-nominal load fraction onto simulator utilization
    by piecewise-linear interpolation of the calibration anchors."""
    if nominal <= 0:
        return 0.0
    for (x0, y0), (x1, y1) in zip(LOAD_ANCHORS, LOAD_ANCHORS[1:]):
        if nominal <= x1:
            return y0 + (y1 - y0) * (nominal - x0) / (x1 - x0)
    return LOAD_ANCHORS[-1][1]


@dataclass
class ExperimentConfig:
    """One experimental cell.

    ``load_fraction`` follows the paper's levels: 0.3 (low), 0.6
    (medium), 0.9 (high).  ``slack`` scales per-type latency targets;
    for the tier policy, ``tier_targets`` gives absolute targets.
    """

    benchmark: str = "tpcc"
    scheme: str = "polaris"
    load_fraction: float = 0.6
    slack: float = 40.0
    workers: int = 4
    request_handlers: int = 2
    warmup_seconds: float = 1.0
    test_seconds: float = 8.0
    drain_limit_seconds: float = 10.0
    seed: int = 42
    #: Estimator parameters (paper: S=1000, 95 <= p <= 99, default 95).
    estimator_window: int = 1000
    estimator_percentile: float = 95.0
    #: "per-type" (Sections 6.2-6.4) or "tiers" (Section 6.5).
    workload_policy: str = "per-type"
    tier_targets: Optional[Dict[str, float]] = None
    #: Optional normalized (0..1) load trace; overrides load_fraction
    #: with a per-second rate between trace_low and trace_high fractions
    #: of peak (the Section 6.4 experiment).
    load_trace: Optional[List[float]] = None
    trace_low_fraction: float = 0.3
    trace_high_fraction: float = 0.9
    #: Fill estimator windows before the test phase (paper's phase 2).
    train_estimators: bool = True
    #: Ablation: feed mixed-frequency runs back into the estimator (the
    #: naive attribute-to-dispatch-frequency policy; see
    #: PolarisScheduler.update_on_mixed_freq).
    estimator_mixed_freq_updates: bool = False
    #: Meter cadence/noise (paper: 1 s, +/-1.5%).
    meter_interval: float = 1.0
    #: DVFS transition stall for the sensitivity ablation.
    transition_latency: float = 0.0
    #: Power timeline bin width for trace experiments (Figure 10(a)).
    timeline_bin_seconds: float = 5.0
    #: Request routing across workers ("rh-round-robin" is the paper's;
    #: "packing" is the Section 8 worker-parking extension).
    routing: str = "rh-round-robin"
    #: Idle C-state ladder: "c1" (paper-effective) or "deep" (extension).
    cstate_ladder: str = "c1"
    #: Frequency-domain granularity: "per-core" (independent P-state
    #: registers, the paper's assumption and the default --- runs are
    #: bit-identical to pre-domain builds), "per-module", or
    #: "per-socket" (cpufreq max-of-votes coordination).  Part of the
    #: sweep-cache key via ``asdict``, so cached per-core results are
    #: never served for coarse-domain cells or vice versa.
    topology: str = "per-core"
    #: Domain P-state switch stall (seconds) on shared-domain
    #: topologies; ignored at per-core granularity.
    topology_switch_latency: float = 0.0
    #: repro.obs: ``None`` defers to ``REPRO_TRACE``; True/False force
    #: tracing on/off for this cell.  Setting either export path
    #: implies ``trace=True``.
    trace: Optional[bool] = None
    #: Write the Chrome/Perfetto trace JSON here after the run.
    trace_path: Optional[str] = None
    #: Write the sampled metric series as CSV here after the run.
    trace_series_path: Optional[str] = None
    #: Metrics sampling cadence on the virtual clock (seconds).
    trace_sample_interval_s: float = 0.25
    #: repro.faults: ``None`` defers to ``REPRO_FAULTS``; a
    #: :class:`~repro.faults.plan.FaultPlan`, scenario name (e.g.
    #: ``"burst+brownout"``), or JSON plan path forces one for this
    #: cell.  An empty plan is inert, so ``faults=None`` with no env is
    #: bit-identical to a run without the faults subsystem.
    faults: FaultsLike = None
    #: repro.fleet: set to a :class:`~repro.fleet.config.FleetConfig`
    #: to run this cell as a sharded/replicated *fleet* of servers
    #: (``workers``/``request_handlers`` above are then ignored in
    #: favour of the fleet's per-node shape).  ``None`` keeps the
    #: single-server path bit-identical to pre-fleet builds; being a
    #: nested dataclass, every fleet knob salts the sweep-cache key
    #: through ``asdict``.
    fleet: Optional[FleetConfig] = None


@dataclass
class ExperimentResult:
    """What the paper reports for one run, plus diagnostics."""

    config: ExperimentConfig
    scheme_label: str
    avg_power_watts: float
    failure_rate: float
    offered: int
    completed: int
    missed: int
    rejected: int
    throughput: float
    peak_throughput: float
    per_workload_failure: Dict[str, float]
    per_workload_offered: Dict[str, int]
    cpu_energy_joules: float
    wall_energy_joules: float
    freq_residency: Dict[float, float]
    power_timeline: List[Tuple[float, float]] = field(default_factory=list)
    load_timeline: List[float] = field(default_factory=list)
    mean_latency_by_workload: Dict[str, float] = field(default_factory=dict)
    #: Diagnostics: simulator events executed and host wall time for this
    #: cell.  Excluded from any figure output (they are host-dependent,
    #: while everything above is seed-deterministic).
    sim_events: int = 0
    wall_seconds: float = 0.0
    #: Trace events recorded (0 when tracing is off); seed-deterministic.
    trace_events: int = 0
    #: repro.faults: injected fault firings, degradation-action counts
    #: (retry/migration/shed/panic...), and requests stranded at end of
    #: run.  All zero/empty on healthy runs; seed-deterministic.
    faults_injected: int = 0
    degradation_actions: Dict[str, int] = field(default_factory=dict)
    lost: int = 0
    #: repro.fleet: per-shard deadline-miss rates and offered counts
    #: (keys ``"shard0"``...), stale reads bounced to primaries,
    #: router/controller action counts, and the (time_s, active nodes)
    #: timeline.  All zero/empty on single-server cells;
    #: seed-deterministic.
    per_shard_failure: Dict[str, float] = field(default_factory=dict)
    per_shard_offered: Dict[str, int] = field(default_factory=dict)
    stale_reads: int = 0
    fleet_actions: Dict[str, int] = field(default_factory=dict)
    node_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: repro.fleet chaos/failover (PR 9): per-shard write-path
    #: availability over the test window (keys ``"shard0"``...),
    #: committed transactions lost to crashes (buffered WAL tails plus
    #: never-shipped durable records trimmed at promotion), completed
    #: failovers and their mean MTTR, shards whose write path was still
    #: down at end of run, p99.9 latency of test-window completions, and
    #: the (time_s, shard_id, event, node_id) failover timeline.  All
    #: zero/empty on healthy and single-server cells;
    #: seed-deterministic.
    availability: Dict[str, float] = field(default_factory=dict)
    lost_commits: int = 0
    failovers: int = 0
    mttr_s: float = 0.0
    unserved_shards: int = 0
    p999_latency_s: float = 0.0
    failover_timeline: List[Tuple[float, int, str, int]] = \
        field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.scheme_label:28s} power={self.avg_power_watts:6.1f} W"
                f"  failure={self.failure_rate:6.3f}"
                f"  thpt={self.throughput:8.1f}/s")


def _build_workloads(config: ExperimentConfig,
                     spec: BenchmarkSpec) -> WorkloadManager:
    if config.workload_policy == "per-type":
        return WorkloadManager.per_type_with_slack(spec, config.slack)
    if config.workload_policy == "tiers":
        if not config.tier_targets:
            raise ValueError("tier policy requires tier_targets")
        return WorkloadManager.tiers(config.tier_targets)
    raise ValueError(f"unknown workload policy {config.workload_policy!r}")


def _train_estimator(estimator: ExecutionTimeEstimator,
                     manager: WorkloadManager, spec: BenchmarkSpec,
                     frequencies: Tuple[float, ...], config: ExperimentConfig,
                     rng: random.Random) -> None:
    """Phase 2: fill each (workload, frequency) window.

    For per-type workloads the window receives draws of that type's
    service time scaled to each frequency; tier workloads receive draws
    from the full mix (what measuring the tier's transactions yields).
    """
    fill = estimator.window
    for workload in manager.workloads:
        if config.workload_policy == "per-type":
            models = [spec.type_named(workload.name).service]
            weights = [1.0]
        else:
            models = [t.service for t in spec.types]
            weights = [spec.mix_fraction(t.name) for t in spec.types]
        for _ in range(fill):
            u = rng.random()
            acc = 0.0
            model = models[-1]
            for m, w in zip(models, weights):
                acc += w
                if u <= acc:
                    model = m
                    break
            ref_seconds = model.draw_seconds(rng)
            for freq in frequencies:
                estimator.observe(workload.name, freq,
                                  ref_seconds * model.ref_freq_ghz / freq)


def run_experiment(config: ExperimentConfig,
                   tracer: Optional[Tracer] = None) -> ExperimentResult:
    """Execute one cell and return the paper's metrics for it.

    Pass an explicit ``tracer`` to capture the run's trace in-process;
    otherwise ``config.trace`` / ``REPRO_TRACE`` decide (and setting
    ``config.trace_path`` or ``config.trace_series_path`` implies
    tracing on, since an export was asked for).
    """
    if config.fleet is not None:
        # Fleet cells route through repro.fleet (which itself builds on
        # this module --- hence the local import).
        from repro.fleet.experiment import run_fleet_experiment
        return run_fleet_experiment(config, tracer)
    wall_start = perf_clock()
    scheme = scheme_named(config.scheme)
    spec = BENCHMARKS[config.benchmark]()
    streams = RandomStreams(config.seed)
    # repro.faults: resolve the plan up front (config > REPRO_FAULTS >
    # none).  Everything fault-related below is gated on `plan is not
    # None`, so a healthy run touches no fault code path at all.
    plan = resolve_fault_plan(config.faults)
    if plan is not None and plan.has_fleet_faults:
        raise ValueError(
            "the fault plan carries fleet faults (node crashes / "
            "partitions / replica lag) but this is a single-server "
            "cell; set config.fleet to run it as a fleet")
    if tracer is None:
        want_trace = config.trace
        if want_trace is None and (config.trace_path
                                   or config.trace_series_path):
            want_trace = True
        tracer = Tracer() if trace_enabled(want_trace) else NULL_TRACER
    sim = Simulator(tracer=tracer)
    manager = _build_workloads(config, spec)
    injector: Optional[FaultInjector] = None
    resilience: Optional[ResilienceController] = None
    if plan is not None:
        injector = FaultInjector(sim, plan, streams.get("faults"))

    topology = make_topology(config.topology)
    if not topology.per_core and config.topology_switch_latency > 0:
        topology = SocketTopology(
            granularity=topology.granularity,
            cores_per_socket=topology.cores_per_socket,
            cores_per_module=topology.cores_per_module,
            switch_latency_s=config.topology_switch_latency)
    server_config = ServerConfig(
        workers=config.workers,
        request_handlers=config.request_handlers,
        transition_latency=config.transition_latency,
        routing=config.routing,
        cstate_ladder=config.cstate_ladder,
        topology=topology,
    )

    estimator = ExecutionTimeEstimator(config.estimator_window,
                                       config.estimator_percentile)
    if injector is not None:
        # Misprediction skew wraps the estimator *before* the scheduler
        # factory captures it, so every scheduler sees skewed estimates
        # while observations still feed the real windows.
        estimator = injector.wrap_estimator(estimator)
    if scheme.uses_scheduler:
        base_factory = scheme.make_scheduler_factory(
            server_config.scheduler_frequencies, estimator)
        if config.estimator_mixed_freq_updates:
            def factory(_base=base_factory):
                scheduler = _base()
                scheduler.update_on_mixed_freq = True
                return scheduler
        else:
            factory = base_factory
        server = DatabaseServer(sim, server_config,
                                scheduler_factory=factory,
                                initial_freq=scheme.initial_freq)
        if config.train_estimators:
            _train_estimator(estimator, manager, spec,
                             server_config.scheduler_frequencies, config,
                             streams.get("training"))
        governors = None
    else:
        server = DatabaseServer(sim, server_config,
                                scheduler_factory=None,
                                initial_freq=scheme.initial_freq)
        assert scheme.governor_factory is not None
        governors = GovernorSet(scheme.governor_factory)
        governors.attach_all(server.cores, sim)

    if injector is not None:
        assert plan is not None
        if plan.degradation.any_enabled:
            resilience = ResilienceController(sim, server, plan.degradation)
            resilience.attach()
        injector.attach(server)

    # ------------------------------------------------------------------
    # Offered load
    # ------------------------------------------------------------------
    peak = spec.peak_throughput(config.workers)
    if config.load_trace is not None:
        low = effective_load_fraction(config.trace_low_fraction) * peak
        high = effective_load_fraction(config.trace_high_fraction) * peak
        rates = [low + v * (high - low) for v in config.load_trace]
        schedule: Optional[RateSchedule] = RateSchedule(rates)
        rate_fn = schedule.rate_at
    else:
        schedule = None
        target = effective_load_fraction(config.load_fraction) * peak
        rate_fn = lambda _now: target  # noqa: E731 - tiny adapter

    if injector is not None:
        rate_fn = injector.wrap_rate(rate_fn)

    # The three per-arrival streams consume entropy through random()
    # only, so they serve pre-drawn blocks (bit-identical; see
    # BatchedStream).  The tier stream draws with randrange() and must
    # stay unbatched.
    service_rng = streams.get_batched("service-times")
    mix_rng = streams.get_batched("mix")
    tier_rng = streams.get("tier-assignment")
    tiers = manager.workloads if config.workload_policy == "tiers" else None
    choose_type = spec.choose_type
    manager_get = manager.get
    submit = server.submit

    def on_arrival(now: float) -> None:
        txn_type = choose_type(mix_rng)
        if tiers is not None:
            workload = tiers[tier_rng.randrange(len(tiers))]
        else:
            workload = manager_get(txn_type.name)
        submit(Request(workload, txn_type.name, now,
                       txn_type.service.draw_work(service_rng)))

    generator = OpenLoopGenerator(sim, rate_fn, on_arrival,
                                  streams.get_batched("arrivals"))

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    recorder = LatencyRecorder()
    server.add_completion_listener(recorder.on_completion)
    server.add_rejection_listener(recorder.on_rejection)

    # repro.obs: the Prometheus-style registry mirrors what the paper
    # plots over time (Figures 6-12): wall power, queue depth, per-core
    # frequency, misses, latency.  Gauges read live simulation state
    # through callbacks; the sampler snapshots everything on the
    # virtual clock, so the series are seed-deterministic.
    sampler: Optional[MetricsSampler] = None
    if tracer.enabled:
        registry = MetricRegistry()
        registry.gauge("power_watts", "instantaneous wall draw",
                       fn=server.wall_power)
        registry.gauge("queue_depth_total", "requests queued, all workers",
                       fn=lambda: float(server.total_queue_length()))
        registry.gauge("pending_events", "live simulator events",
                       fn=lambda: float(sim.pending_count()))
        for core in server.cores:
            registry.gauge(f"freq_ghz.core{core.core_id}",
                           "core operating frequency",
                           fn=lambda c=core: c.freq)
        miss_counter = registry.counter("deadline_misses")
        done_counter = registry.counter("txn_completed")
        reject_counter = registry.counter("txn_rejected")
        latency_hist = registry.histogram("txn_latency_s")

        def _obs_completion(request: Request) -> None:
            done_counter.inc()
            latency_hist.observe(request.latency)
            if not request.met_deadline:
                miss_counter.inc()

        server.add_completion_listener(_obs_completion)
        server.add_rejection_listener(lambda _r: reject_counter.inc())
        sampler = MetricsSampler(
            sim, registry, interval_s=config.trace_sample_interval_s,
            tracer=tracer)
        sampler.start()

    test_start = config.warmup_seconds
    if schedule is not None:
        test_duration = schedule.duration
    else:
        test_duration = config.test_seconds
    test_end = test_start + test_duration
    # The meter's cadence is the paper's 1 s, clamped so short test
    # windows (small-scale tests) still collect several readings.
    meter_interval = min(config.meter_interval, test_duration / 4.0)
    meter = PowerMeter(sim, server.wall_energy, streams.get("meter-noise"),
                       interval=meter_interval)
    recorder.set_window(test_start, test_end)

    # ------------------------------------------------------------------
    # Run the three phases
    # ------------------------------------------------------------------
    generator.start()
    sim.schedule_at(test_start, meter.start, priority=-10)
    sim.run(until=test_end)
    generator.stop()
    # Drain: let in-flight and queued test-phase requests finish so late
    # completions register as failures instead of being censored.
    drain_end = test_end + config.drain_limit_seconds
    while sim.now < drain_end:
        if all(w.idle for w in server.workers) \
                and server.total_queue_length() == 0:
            break
        if not sim.step():
            break
    meter.stop()
    if plan is not None:
        # Requests stranded when a faulted run ends --- still queued (an
        # undrainable dead core) or frozen mid-execution on a stalled
        # core --- count as offered-and-missed, so killing a core cannot
        # censor its casualties into a better failure rate.
        for worker in server.workers:
            queue = getattr(worker.dispatcher, "queue", None)
            if queue is not None:
                for request in queue:
                    recorder.on_lost(request)
            if worker.current is not None and worker.core.stalled:
                recorder.on_lost(worker.current)
        if sim.sanitize:
            server.sanitize_accounting()

    trace_event_count = 0
    if tracer.enabled:
        if sampler is not None:
            sampler.stop()
            sampler.sample_once()  # final state at the end of the drain
        tracer.finalize(sim.now)
        trace_event_count = len(tracer.events)
        if config.trace_path:
            export_chrome_trace(tracer, config.trace_path)
        if config.trace_series_path and sampler is not None:
            export_series_csv(sampler, config.trace_series_path)

    # ------------------------------------------------------------------
    # Collect
    # ------------------------------------------------------------------
    residency: Dict[float, float] = {}
    for core in server.cores:
        core.flush_accounting()
        for freq, seconds in core.freq_residency.items():
            residency[freq] = residency.get(freq, 0.0) + seconds

    per_workload_failure = {
        name: stats.failure_rate
        for name, stats in recorder.per_workload.items()}
    per_workload_offered = {
        name: stats.offered for name, stats in recorder.per_workload.items()}
    mean_latency = {
        name: stats.mean_latency()
        for name, stats in recorder.per_workload.items() if stats.latencies}

    timeline = meter.binned_average(test_start, test_end,
                                    config.timeline_bin_seconds) \
        if meter.samples else []

    if governors is not None:
        governors.detach_all()

    return ExperimentResult(
        config=config,
        scheme_label=scheme.label,
        avg_power_watts=meter.average_power(test_start, test_end),
        failure_rate=recorder.failure_rate,
        offered=recorder.total_offered,
        completed=recorder.total_completed,
        missed=recorder.total_missed,
        rejected=recorder.total_rejected,
        throughput=recorder.total_completed / test_duration,
        peak_throughput=peak,
        per_workload_failure=per_workload_failure,
        per_workload_offered=per_workload_offered,
        cpu_energy_joules=server.cpu_energy(),
        wall_energy_joules=server.wall_energy(),
        freq_residency=residency,
        power_timeline=timeline,
        load_timeline=list(config.load_trace or []),
        mean_latency_by_workload=mean_latency,
        sim_events=sim.events_processed,
        wall_seconds=perf_clock() - wall_start,
        trace_events=trace_event_count,
        faults_injected=injector.total_injected if injector is not None else 0,
        degradation_actions=(
            {k: v for k, v in resilience.actions.items() if v}
            if resilience is not None else {}),
        lost=recorder.total_lost,
    )
