"""Experiment harness: the paper's methodology as a library.

:mod:`repro.harness.experiment` runs one experimental configuration ---
(benchmark, frequency-control scheme, load level, slack) --- through the
paper's three phases (warmup, estimator training, measured test phase)
and returns the metrics the paper reports: average wall power over the
test phase and failure rates overall and per workload.

:mod:`repro.harness.figures` maps each table/figure of the paper's
evaluation section onto a function that regenerates it; the benchmark
suite and the CLI both call through here.

:mod:`repro.harness.parallel` fans independent cells out over worker
processes behind a content-addressed on-disk cache, and
:mod:`repro.harness.profiling` accounts for where the wall time went.
"""

from repro.fleet.config import FleetConfig
from repro.harness.experiment import (
    ExperimentConfig, ExperimentResult, run_experiment,
)
from repro.harness.parallel import SweepCache, SweepRunner, run_sweep
from repro.harness.profiling import TimingReport
from repro.harness.schemes import SCHEMES, Scheme, scheme_named

__all__ = [
    "ExperimentConfig", "ExperimentResult", "FleetConfig",
    "run_experiment",
    "SweepCache", "SweepRunner", "run_sweep", "TimingReport",
    "SCHEMES", "Scheme", "scheme_named",
]
