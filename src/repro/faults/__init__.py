"""repro.faults: deterministic fault injection + graceful degradation.

The simulator's chaos layer.  A :class:`FaultPlan` declares what breaks
and when (DVFS write failures, thermal-throttle envelopes, core stalls,
arrival bursts, estimator misprediction); a :class:`FaultInjector`
schedules it on the virtual clock; a :class:`ResilienceController` arms
the server's degraded modes (bounded DVFS retry, a stalled-core
watchdog with queue migration, admission-control shedding, and a
hysteretic POLARIS panic mode).

Enable contract, matching simsan (``REPRO_SIMSAN``) and tracing
(``REPRO_TRACE``):

* ``REPRO_FAULTS=dying-core`` (a scenario name, ``+``-composable) or
  ``REPRO_FAULTS=/path/plan.json`` applies a plan to every experiment;
* ``ExperimentConfig(faults=FaultPlan(...))`` --- or a scenario
  name / JSON path --- configures one cell explicitly.

Determinism: same seed + same plan -> byte-identical results;
``faults=None`` (no env) is bit-identical to a build without this
package attached.  The sweep cache salts keys with the plan
fingerprint, so faulted and healthy results never alias.
"""

from repro.faults.injector import FaultInjector, SkewedEstimator
from repro.faults.plan import (
    FAULTS_ENV, BurstSpec, DegradationPolicy, FaultPlan, MsrFaultSpec,
    SkewSpec, StallSpec, ThrottleSpec, plan_fingerprint, resolve_fault_plan,
)
from repro.faults.resilience import ResilienceController
from repro.faults.scenarios import SCENARIOS, scenario_named, scenario_names

__all__ = [
    "FAULTS_ENV", "BurstSpec", "DegradationPolicy", "FaultInjector",
    "FaultPlan", "MsrFaultSpec", "ResilienceController", "SCENARIOS",
    "SkewSpec", "SkewedEstimator", "StallSpec", "ThrottleSpec",
    "plan_fingerprint", "resolve_fault_plan", "scenario_named",
    "scenario_names",
]
