"""Turn a :class:`~repro.faults.plan.FaultPlan` into simulator events.

The injector owns the *when* and *whether* of every fault; the affected
components (MSR files, cores, the workload generator, the estimator)
only expose the seams it needs:

* ``MsrFile.fault_hook`` --- consulted per ``IA32_PERF_CTL`` write;
  returns ``"error"`` (the write raises), ``"stuck"`` (the write is
  silently dropped), or ``None``.
* ``Core.set_throttle_ceiling`` / ``Core.stall`` / ``Core.resume`` ---
  driven by scheduled window-boundary events.
* :meth:`FaultInjector.wrap_rate` --- a pure function of the plan and
  the virtual clock multiplying the offered-load rate inside burst
  windows (no extra RNG draws, so the arrival *pattern* outside bursts
  is untouched).
* :class:`SkewedEstimator` --- proxies ``mu(c, f)`` and scales the
  prediction inside skew windows.

All probabilistic decisions draw from one dedicated seeded stream
(``streams.get("faults")``), so faulted runs are exactly as
reproducible as healthy ones.  Every firing bumps a per-kind counter
and emits an ``obs`` trace instant on the ``faults/injector`` track.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.faults.plan import FaultPlan

#: Deterministic ordering of the per-kind fault counters.
_KINDS = ("msr", "throttle", "stall", "burst", "skew")


class SkewedEstimator:
    """Estimator proxy injecting deterministic misprediction.

    Scales :meth:`estimate` by the product of the factors of all skew
    windows active at the current virtual time; observations and
    training pass through untouched, so the underlying model stays
    honest --- only the *predictions* the scheduler sees are skewed.
    """

    def __init__(self, inner, sim, skews):
        self._inner = inner
        self._sim = sim
        self._skews = tuple(skews)

    @property
    def window(self) -> int:
        return self._inner.window

    def estimate(self, workload: str, freq_ghz: float) -> float:
        value = self._inner.estimate(workload, freq_ghz)
        now_s = self._sim.now
        for spec in self._skews:
            if spec.start_s <= now_s < spec.end_s:
                value *= spec.factor
        return value

    def observe(self, workload: str, freq_ghz: float,
                value: float) -> None:
        self._inner.observe(workload, freq_ghz, value)

    def prime(self, workload: str, freq_ghz: float, value: float,
              count: int = 1) -> None:
        self._inner.prime(workload, freq_ghz, value, count)


class FaultInjector:
    """Schedules and fires one plan's faults against one server."""

    def __init__(self, sim, plan: FaultPlan, rng: random.Random):
        self.sim = sim
        self.plan = plan
        self.rng = rng
        self.injected: Dict[str, int] = {kind: 0 for kind in _KINDS}
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("faults", "injector")
        self._server = None
        #: core_id -> active throttle ceilings (overlap-aware).
        self._ceilings: Dict[int, List[float]] = {}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _fired(self, kind: str, name: str, **payload) -> None:
        self.injected[kind] += 1
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, name, self.sim.now,
                                scenario=self.plan.name, **payload)
            self.tracer.counter(self.trace_track, "faults_injected",
                                self.sim.now, count=self.total_injected)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, server) -> None:
        """Install MSR hooks and schedule every windowed fault.

        Call once, before the simulation starts; ``server`` is the
        :class:`~repro.db.server.DatabaseServer` under test.
        """
        if self._server is not None:
            raise RuntimeError("injector is already attached")
        self._server = server
        server.faults_active = True
        if self.plan.msr_faults:
            for worker in server.workers:
                worker.msr.fault_hook = partial(self._msr_fault,
                                                worker.worker_id)
        for spec in self.plan.throttles:
            for worker in self._domain_scope(self._affected(spec.workers)):
                self.sim.schedule_at(
                    spec.start_s,
                    partial(self._throttle_begin, worker, spec))
                self.sim.schedule_at(
                    spec.end_s, partial(self._throttle_end, worker, spec))
        for spec in self.plan.stalls:
            for worker in self._domain_scope(self._affected(spec.workers)):
                self.sim.schedule_at(spec.at_s,
                                     partial(self._stall_begin, worker))
                if spec.duration_s is not None:
                    self.sim.schedule_at(spec.at_s + spec.duration_s,
                                         partial(self._stall_end, worker))
        for spec in self.plan.bursts:
            self.sim.schedule_at(
                spec.start_s,
                partial(self._window_edge, "burst", "fault:burst",
                        True, multiplier=spec.multiplier))
            self.sim.schedule_at(
                spec.end_s,
                partial(self._window_edge, "burst", "fault:burst",
                        False, multiplier=spec.multiplier))
        for spec in self.plan.skews:
            self.sim.schedule_at(
                spec.start_s,
                partial(self._window_edge, "skew", "fault:estimator-skew",
                        True, factor=spec.factor))
            self.sim.schedule_at(
                spec.end_s,
                partial(self._window_edge, "skew", "fault:estimator-skew",
                        False, factor=spec.factor))

    def _affected(self, worker_ids) -> list:
        workers = self._server.workers
        if not worker_ids:
            return list(workers)
        return [workers[i] for i in worker_ids if i < len(workers)]

    def _domain_scope(self, affected: list) -> list:
        """Widen physical faults to whole frequency domains.

        Thermal throttles and core stalls act on silicon the targeted
        core shares with its domain siblings (one voltage rail, one
        clock), so on shared-domain topologies every member of a
        targeted core's domain degrades together.  Per-core topologies
        (``domain is None``) pass through unchanged --- the pre-domain
        behavior.  Order is worker-id ascending, deduplicated, for
        deterministic event scheduling.
        """
        workers = self._server.workers
        if all(worker.core.domain is None for worker in affected):
            # Identity topology: keep the caller's ordering exactly
            # (event scheduling order is part of determinism).
            return affected
        selected_ids = set()
        for worker in affected:
            domain = worker.core.domain
            if domain is None:
                selected_ids.add(worker.worker_id)
            else:
                selected_ids.update(domain.member_ids())
        return [workers[i] for i in sorted(selected_ids)
                if i < len(workers)]

    # ------------------------------------------------------------------
    # DVFS write faults
    # ------------------------------------------------------------------
    def _msr_fault(self, worker_id: int, address: int,
                   value: int) -> Optional[str]:
        """The ``MsrFile.fault_hook``: decide one write's fate."""
        now_s = self.sim.now
        for spec in self.plan.msr_faults:
            if not spec.start_s <= now_s < spec.end_s:
                continue
            if spec.workers and worker_id not in spec.workers:
                continue
            if spec.probability < 1.0 \
                    and self.rng.random() >= spec.probability:
                continue
            self._fired("msr", f"fault:msr:{spec.mode}",
                        worker=worker_id, value=value)
            return spec.mode
        return None

    # ------------------------------------------------------------------
    # Thermal-throttle envelopes (overlap-aware per core)
    # ------------------------------------------------------------------
    def _throttle_begin(self, worker, spec) -> None:
        active = self._ceilings.setdefault(worker.core.core_id, [])
        active.append(spec.ceiling_ghz)
        worker.core.set_throttle_ceiling(min(active))
        self._fired("throttle", "fault:throttle:begin",
                    worker=worker.worker_id, ceiling_ghz=spec.ceiling_ghz)

    def _throttle_end(self, worker, spec) -> None:
        active = self._ceilings.get(worker.core.core_id, [])
        if spec.ceiling_ghz in active:
            active.remove(spec.ceiling_ghz)
        worker.core.set_throttle_ceiling(min(active) if active else None)
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, "fault:throttle:end",
                                self.sim.now, scenario=self.plan.name,
                                worker=worker.worker_id)

    # ------------------------------------------------------------------
    # Core stalls / offlining
    # ------------------------------------------------------------------
    def _stall_begin(self, worker) -> None:
        worker.core.stall()
        self._fired("stall", "fault:core-stall", worker=worker.worker_id)

    def _stall_end(self, worker) -> None:
        worker.core.resume()
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, "fault:core-resume",
                                self.sim.now, scenario=self.plan.name,
                                worker=worker.worker_id)
        worker.kick()

    # ------------------------------------------------------------------
    # Burst / skew window edges (counting + tracing only; the state
    # change itself lives in wrap_rate / SkewedEstimator, which read
    # the plan directly so behavior cannot drift from the trace)
    # ------------------------------------------------------------------
    def _window_edge(self, kind: str, name: str, opening: bool,
                     **payload) -> None:
        if opening:
            self._fired(kind, f"{name}:begin", **payload)
        elif self.tracer.enabled:
            self.tracer.instant(self.trace_track, f"{name}:end",
                                self.sim.now, scenario=self.plan.name,
                                **payload)

    # ------------------------------------------------------------------
    # Pure wrappers
    # ------------------------------------------------------------------
    def wrap_rate(self, rate_fn: Callable[[float], float]
                  ) -> Callable[[float], float]:
        """Multiply the offered-load rate inside burst windows."""
        bursts = self.plan.bursts
        if not bursts:
            return rate_fn

        def burst_rate(now_s: float) -> float:
            rate = rate_fn(now_s)
            for spec in bursts:
                if spec.start_s <= now_s < spec.end_s:
                    rate *= spec.multiplier
            return rate

        return burst_rate

    def wrap_estimator(self, estimator):
        """Proxy the estimator through the plan's misprediction skews."""
        if not self.plan.skews:
            return estimator
        return SkewedEstimator(estimator, self.sim, self.plan.skews)


__all__ = ["FaultInjector", "SkewedEstimator"]
