"""The named chaos-scenario library.

Each scenario is a :class:`~repro.faults.plan.FaultPlan` factory with
windows sized for the harness's default timelines: faults open at 0.5 s
(inside even the shortest test phases the suite runs) and persist to
6.0 s (past the figure runs' test end), so every measurement window
observes the fault in steady state.

Compose scenarios with ``+``: ``scenario_named("burst+brownout")``
merges the plans (fault union; the right-hand side wins any armed
degradation knob).  The CLI and ``ExperimentConfig(faults="name")``
both accept these strings, as does ``REPRO_FAULTS``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.faults.plan import (
    BurstSpec, DegradationPolicy, FaultPlan, MsrFaultSpec, StallSpec,
    ThrottleSpec,
)

_START_S = 0.5
_END_S = 6.0


def burst() -> FaultPlan:
    """Overload: offered load nearly doubles; shedding keeps queues
    bounded so admitted requests still meet deadlines."""
    return FaultPlan(
        bursts=(BurstSpec(_START_S, _END_S, multiplier=1.8),),
        degradation=DegradationPolicy(shed_queue_depth=12),
        name="burst")


def brownout() -> FaultPlan:
    """Thermal throttling: every core capped at 1.6 GHz.  No degradation
    can buy frequency back, so this is a pure stress scenario."""
    return FaultPlan(
        throttles=(ThrottleSpec(_START_S, _END_S, ceiling_ghz=1.6),),
        name="brownout")


def sticky_pstate() -> FaultPlan:
    """Flaky DVFS: 30% of P-state writes are silently dropped, pinning
    cores at stale frequencies; bounded retry re-applies the target."""
    return FaultPlan(
        msr_faults=(MsrFaultSpec(_START_S, _END_S, mode="stuck",
                                 probability=0.3),),
        degradation=DegradationPolicy(msr_retry_limit=3,
                                      retry_backoff_s=0.002),
        name="sticky-pstate")


def dying_core() -> FaultPlan:
    """Worker 0's core freezes mid-run and never recovers.  The watchdog
    quarantines it and migrates its queue; panic mode pins survivors to
    the maximum frequency while the miss rate is elevated; shedding keeps
    the survivors' queues bounded, since they now absorb the dead
    worker's share of the arrivals on top of their own."""
    return FaultPlan(
        stalls=(StallSpec(at_s=_START_S, duration_s=None, workers=(0,)),),
        degradation=DegradationPolicy(
            watchdog_interval_s=0.025,
            watchdog_stall_threshold_s=0.05,
            shed_queue_depth=12,
            panic_enter_miss_rate=0.2,
            panic_exit_miss_rate=0.02,
            panic_window=50),
        name="dying-core")


#: name -> plan factory.  Factories (not instances) so callers can never
#: mutate the library's plans (FaultPlan is frozen, but its tuples are
#: rebuilt fresh per call anyway).
SCENARIOS: Dict[str, Callable[[], FaultPlan]] = {
    "burst": burst,
    "brownout": brownout,
    "sticky-pstate": sticky_pstate,
    "dying-core": dying_core,
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def scenario_named(spec: str) -> FaultPlan:
    """Resolve ``"burst"`` or a ``+``-composition like
    ``"burst+brownout"`` into one merged plan."""
    parts = [part.strip() for part in spec.split("+") if part.strip()]
    if not parts:
        raise ValueError(f"empty fault-scenario spec {spec!r}")
    plans = []
    for part in parts:
        factory = SCENARIOS.get(part)
        if factory is None:
            raise ValueError(
                f"unknown fault scenario {part!r}; known scenarios: "
                f"{', '.join(scenario_names())}")
        plans.append(factory())
    merged = plans[0]
    for plan in plans[1:]:
        merged = merged.merged_with(plan)
    return merged


__all__ = ["SCENARIOS", "brownout", "burst", "dying_core",
           "scenario_named", "scenario_names", "sticky_pstate"]
