"""The named chaos-scenario library.

Each scenario is a :class:`~repro.faults.plan.FaultPlan` factory with
windows sized for the harness's default timelines: faults open at 0.5 s
(inside even the shortest test phases the suite runs) and persist to
6.0 s (past the figure runs' test end), so every measurement window
observes the fault in steady state.

Compose scenarios with ``+``: ``scenario_named("burst+brownout")``
merges the plans (fault union; the right-hand side wins any armed
degradation knob).  The CLI and ``ExperimentConfig(faults="name")``
both accept these strings, as does ``REPRO_FAULTS``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.faults.plan import (
    BurstSpec, DegradationPolicy, FaultPlan, MsrFaultSpec, NodeCrashSpec,
    PartitionSpec, ReplicaLagSpec, StallSpec, ThrottleSpec,
)

_START_S = 0.5
_END_S = 6.0

#: Fleet chaos opens later: node crashes at 1.5 s so every fleet cell's
#: measurement window (warmup 0.5--1.0 s) is already open when the
#: primaries die, and the failover timeline lands inside it.
_CRASH_AT_S = 1.5


def burst() -> FaultPlan:
    """Overload: offered load nearly doubles; shedding keeps queues
    bounded so admitted requests still meet deadlines."""
    return FaultPlan(
        bursts=(BurstSpec(_START_S, _END_S, multiplier=1.8),),
        degradation=DegradationPolicy(shed_queue_depth=12),
        name="burst")


def brownout() -> FaultPlan:
    """Thermal throttling: every core capped at 1.6 GHz.  No degradation
    can buy frequency back, so this is a pure stress scenario."""
    return FaultPlan(
        throttles=(ThrottleSpec(_START_S, _END_S, ceiling_ghz=1.6),),
        name="brownout")


def sticky_pstate() -> FaultPlan:
    """Flaky DVFS: 30% of P-state writes are silently dropped, pinning
    cores at stale frequencies; bounded retry re-applies the target."""
    return FaultPlan(
        msr_faults=(MsrFaultSpec(_START_S, _END_S, mode="stuck",
                                 probability=0.3),),
        degradation=DegradationPolicy(msr_retry_limit=3,
                                      retry_backoff_s=0.002),
        name="sticky-pstate")


def dying_core() -> FaultPlan:
    """Worker 0's core freezes mid-run and never recovers.  The watchdog
    quarantines it and migrates its queue; panic mode pins survivors to
    the maximum frequency while the miss rate is elevated; shedding keeps
    the survivors' queues bounded, since they now absorb the dead
    worker's share of the arrivals on top of their own."""
    return FaultPlan(
        stalls=(StallSpec(at_s=_START_S, duration_s=None, workers=(0,)),),
        degradation=DegradationPolicy(
            watchdog_interval_s=0.025,
            watchdog_stall_threshold_s=0.05,
            shed_queue_depth=12,
            panic_enter_miss_rate=0.2,
            panic_exit_miss_rate=0.02,
            panic_window=50),
        name="dying-core")


def shard_crash() -> FaultPlan:
    """Crash-per-shard: every shard's primary fail-stops at 1.5 s.

    Fleet cells only.  With failover enabled the heartbeat detects each
    crash, promotes the most-caught-up replica after a durable-WAL
    replay, and the fleet ends with zero unserved shards; without
    failover every shard's write path is dead for the rest of the run
    --- the availability contrast the acceptance test pins.
    """
    return FaultPlan(node_crashes=(NodeCrashSpec(at_s=_CRASH_AT_S),),
                     name="shard-crash")


def partition() -> FaultPlan:
    """Replication partition: every shard's replicas stop applying for
    [1.5 s, 6 s).  Reads bounce to the primaries for the whole window
    (unbounded staleness), then the partition heals."""
    return FaultPlan(partitions=(PartitionSpec(_CRASH_AT_S, _END_S),),
                     name="partition")


def slow_follower() -> FaultPlan:
    """Slow follower: every replica's apply lag grows by 250 ms during
    [0.5 s, 6 s) --- the overloaded-apply-thread brownout, milder than a
    partition."""
    return FaultPlan(
        replica_lags=(ReplicaLagSpec(_START_S, _END_S,
                                     extra_lag_s=0.25),),
        name="slow-follower")


#: name -> plan factory.  Factories (not instances) so callers can never
#: mutate the library's plans (FaultPlan is frozen, but its tuples are
#: rebuilt fresh per call anyway).
SCENARIOS: Dict[str, Callable[[], FaultPlan]] = {
    "burst": burst,
    "brownout": brownout,
    "sticky-pstate": sticky_pstate,
    "dying-core": dying_core,
}

#: Fleet-scope scenarios, kept out of :data:`SCENARIOS` because they
#: only run in fleet cells (a single-server cell rejects their plans);
#: :func:`scenario_named` resolves both registries.
FLEET_SCENARIOS: Dict[str, Callable[[], FaultPlan]] = {
    "shard-crash": shard_crash,
    "partition": partition,
    "slow-follower": slow_follower,
}


def scenario_names() -> Tuple[str, ...]:
    """Single-server scenario names (every one runs in a plain cell)."""
    return tuple(sorted(SCENARIOS))


def fleet_scenario_names() -> Tuple[str, ...]:
    """Fleet-only scenario names (need ``config.fleet`` to run)."""
    return tuple(sorted(FLEET_SCENARIOS))


def scenario_named(spec: str) -> FaultPlan:
    """Resolve ``"burst"`` or a ``+``-composition like
    ``"burst+brownout"`` into one merged plan."""
    parts = [part.strip() for part in spec.split("+") if part.strip()]
    if not parts:
        raise ValueError(f"empty fault-scenario spec {spec!r}")
    plans = []
    for part in parts:
        factory = SCENARIOS.get(part) or FLEET_SCENARIOS.get(part)
        if factory is None:
            known = scenario_names() + fleet_scenario_names()
            raise ValueError(
                f"unknown fault scenario {part!r}; known scenarios: "
                f"{', '.join(known)}")
        plans.append(factory())
    merged = plans[0]
    for plan in plans[1:]:
        merged = merged.merged_with(plan)
    return merged


__all__ = ["FLEET_SCENARIOS", "SCENARIOS", "brownout", "burst",
           "dying_core", "fleet_scenario_names", "partition",
           "scenario_named", "scenario_names", "shard_crash",
           "slow_follower", "sticky_pstate"]
