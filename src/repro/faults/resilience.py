"""Graceful degradation: what the server does when faults land.

One :class:`ResilienceController` per experiment, armed by the plan's
:class:`~repro.faults.plan.DegradationPolicy`.  Four mechanisms, all on
the virtual clock and all individually toggleable:

* **DVFS retry** --- a failed (raised or silently-dropped) P-state write
  is retried with deterministic exponential backoff; after the last
  attempt the worker falls back to the next-lower achievable P-state.
  A newer scheduling decision cancels the outstanding retry.
* **Core watchdog** --- a periodic sweep quarantines workers whose core
  has been stalled past a threshold, migrating their queued requests to
  healthy workers (EDF dispatchers re-sort by deadline on arrival).
  The router probes past quarantined workers from then on.
* **Load shedding** --- arrivals routed to a worker whose queue is
  already at the shed depth are rejected through the server's existing
  rejection-listener path (counted as failures, like Section 1's
  "reject low value requests when load is high").
* **Panic mode** --- a sliding window of recent completions tracks the
  deadline-miss rate; crossing the enter threshold pins every healthy
  core to the maximum frequency and flips POLARIS's ``panic`` flag so
  SetProcessorFreq short-circuits to ``fmax``.  Exit is hysteretic.

Every action bumps a named counter in :attr:`ResilienceController.actions`
and emits an ``obs`` trace instant on the ``faults/resilience`` track,
so degraded-mode behavior is auditable in Perfetto.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Deque, Dict, Optional

from repro.cpu.msr import IA32_PERF_CTL, MsrError, encode_perf_ctl
from repro.faults.plan import DegradationPolicy

#: Deterministic ordering of the action counters.
_ACTIONS = ("msr_retry", "msr_retry_success", "msr_fallback", "msr_giveup",
            "quarantine", "migration", "migrated_requests", "shed",
            "panic_enter", "panic_exit")


def drain_worker_queue(worker) -> list:
    """Pop every queued request off ``worker``'s dispatcher, in the
    dispatcher's own order.  Shared by the watchdog's quarantine path
    and the fleet tier's node-drain path (``repro.fleet``)."""
    requests = []
    while True:
        request = worker.dispatcher.next_request()
        if request is None:
            return requests
        requests.append(request)


def redistribute_requests(requests, workers) -> None:
    """Hand already-admitted requests to ``workers`` round-robin via
    ``receive_migrated`` (EDF dispatchers re-sort by deadline; admission
    control and shedding are bypassed --- migration must not lose work)."""
    for index, request in enumerate(requests):
        workers[index % len(workers)].receive_migrated(request)


class ResilienceController:
    """Arms the degradation mechanisms of one experiment's server."""

    def __init__(self, sim, server, policy: DegradationPolicy):
        self.sim = sim
        self.server = server
        self.policy = policy
        self.actions: Dict[str, int] = {name: 0 for name in _ACTIONS}
        self.tracer = sim.tracer
        self.trace_track = self.tracer.track("faults", "resilience")
        self.panic = False
        #: worker ids this controller has declared dead.
        self.quarantined = set()
        #: worker_id -> pending retry event (one in flight per worker).
        self._retries: Dict[int, object] = {}
        self._outcomes: Deque[bool] = deque(maxlen=policy.panic_window)

    def _record(self, action: str, name: str, **payload) -> None:
        self.actions[action] += 1
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, name, self.sim.now,
                                **payload)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install this controller on its server and start the watchdog."""
        self.server.resilience = self
        if self.policy.panic_enter_miss_rate is not None:
            self.server.add_completion_listener(self._on_outcome)
            # Sheds and other rejections are deadline failures by the
            # paper's metric, so they count toward the panic window too;
            # otherwise shedding masks the very overload panic exists to
            # react to (bounded queues -> every completion on time).
            self.server.add_rejection_listener(self._on_rejection)
        if self.policy.watchdog_interval_s is not None:
            self.sim.schedule(self.policy.watchdog_interval_s,
                              self._watchdog_tick)

    # ------------------------------------------------------------------
    # DVFS retry with deterministic backoff
    # ------------------------------------------------------------------
    def on_msr_failure(self, worker, target_ghz: float) -> None:
        """A PERF_CTL write raised or did not take effect; start (or
        restart) the bounded retry cycle for this worker."""
        self.cancel_retry(worker)
        if self.policy.msr_retry_limit < 1:
            return
        self._schedule_retry(worker, target_ghz, attempt=1)

    def cancel_retry(self, worker) -> None:
        """Drop the outstanding retry (a newer decision supersedes it)."""
        event = self._retries.pop(worker.worker_id, None)
        if event is not None:
            event.cancel()

    def _schedule_retry(self, worker, target_ghz: float,
                        attempt: int) -> None:
        delay_s = self.policy.retry_backoff_s * (2 ** (attempt - 1))
        self._retries[worker.worker_id] = self.sim.schedule(
            delay_s, partial(self._retry, worker, target_ghz, attempt))

    def _retry(self, worker, target_ghz: float, attempt: int) -> None:
        self._retries.pop(worker.worker_id, None)
        self._record("msr_retry", "degrade:retry", worker=worker.worker_id,
                     target_ghz=target_ghz, attempt=attempt)
        if self._try_write(worker, target_ghz):
            self.actions["msr_retry_success"] += 1
            return
        if attempt < self.policy.msr_retry_limit:
            self._schedule_retry(worker, target_ghz, attempt + 1)
            return
        # Retries exhausted: one shot at the nearest lower P-state, then
        # give up and let the core ride its stale frequency.
        fallback_ghz = worker.core.pstates.step_down(target_ghz)
        if abs(fallback_ghz - target_ghz) > 1e-12 \
                and self._try_write(worker, fallback_ghz):
            self._record("msr_fallback", "degrade:retry-fallback",
                         worker=worker.worker_id, target_ghz=target_ghz,
                         fallback_ghz=fallback_ghz)
        else:
            self._record("msr_giveup", "degrade:retry-giveup",
                         worker=worker.worker_id, target_ghz=target_ghz)

    def _try_write(self, worker, freq_ghz: float) -> bool:
        """One write attempt; True iff the core landed on the target
        (modulo throttle clamping --- and, on shared-domain topologies,
        a sibling vote holding the domain higher --- neither of which is
        a write failure)."""
        try:
            worker.msr.write(IA32_PERF_CTL, encode_perf_ctl(freq_ghz))
        except MsrError:
            return False
        expected = worker.core.projected_frequency(freq_ghz)
        return abs(worker.core.freq - expected) < 1e-12

    # ------------------------------------------------------------------
    # Watchdog + migration
    # ------------------------------------------------------------------
    def _watchdog_tick(self) -> None:
        policy = self.policy
        now_s = self.sim.now
        for worker in self.server.workers:
            core = worker.core
            if not core.stalled or worker.worker_id in self.quarantined:
                continue
            started_s = core.stall_started_s
            if started_s is None \
                    or now_s - started_s < policy.watchdog_stall_threshold_s:
                continue
            self._quarantine(worker)
        self.sim.schedule(policy.watchdog_interval_s, self._watchdog_tick)

    def _quarantine(self, worker) -> None:
        self.quarantined.add(worker.worker_id)
        self.server.quarantined.add(worker.worker_id)
        self._record("quarantine", "degrade:quarantine",
                     worker=worker.worker_id,
                     queued=worker.queue_length())
        self._migrate(worker)

    def _migrate(self, worker) -> None:
        """Move every queued request off a dead worker, round-robin over
        the healthy ones (their EDF queues re-sort by deadline)."""
        requests = drain_worker_queue(worker)
        if not requests:
            return
        healthy = [w for w in self.server.workers
                   if w.worker_id not in self.quarantined
                   and not w.core.stalled]
        if not healthy:
            # Nowhere to go: put them back so end-of-run accounting can
            # still see (and count) them as lost.
            for request in requests:
                worker.dispatcher.enqueue(request)
            return
        redistribute_requests(requests, healthy)
        self.actions["migration"] += 1
        self.actions["migrated_requests"] += len(requests)
        if self.tracer.enabled:
            self.tracer.instant(self.trace_track, "degrade:migration",
                                self.sim.now, source=worker.worker_id,
                                moved=len(requests),
                                targets=len(healthy))
        if self.sim.sanitize:
            # No request may be lost or double-counted by a migration.
            self.server.sanitize_accounting()

    # ------------------------------------------------------------------
    # Load shedding
    # ------------------------------------------------------------------
    def maybe_shed(self, worker, request) -> bool:
        """True (and counted/traced) iff ``request`` should be shed at
        admission because ``worker``'s queue is past the shed depth."""
        depth = self.policy.shed_queue_depth
        if depth is None or worker.queue_length() < depth:
            return False
        self._record("shed", "degrade:shed", worker=worker.worker_id,
                     queue_depth=worker.queue_length(),
                     txn_type=request.txn_type)
        return True

    # ------------------------------------------------------------------
    # Panic mode (hysteretic fmax pinning)
    # ------------------------------------------------------------------
    def _on_outcome(self, request) -> None:
        self._note_outcome(request.met_deadline)

    def _on_rejection(self, request) -> None:
        self._note_outcome(False)

    def _note_outcome(self, met_deadline: bool) -> None:
        self._outcomes.append(met_deadline)
        if len(self._outcomes) < self.policy.panic_window:
            return
        misses = sum(1 for met in self._outcomes if not met)
        rate = misses / len(self._outcomes)
        if not self.panic and rate >= self.policy.panic_enter_miss_rate:
            self._set_panic(True, rate)
        elif self.panic and rate <= self.policy.panic_exit_miss_rate:
            self._set_panic(False, rate)

    def _set_panic(self, entering: bool, miss_rate: float) -> None:
        self.panic = entering
        action = "panic_enter" if entering else "panic_exit"
        self._record(action, f"degrade:panic:{'enter' if entering else 'exit'}",
                     miss_rate=miss_rate)
        if self.tracer.enabled:
            self.tracer.counter(self.trace_track, "panic_mode",
                                self.sim.now, active=1 if entering else 0)
        for worker in self.server.workers:
            if hasattr(worker.dispatcher, "panic"):
                worker.dispatcher.panic = entering
            if entering and worker.worker_id not in self.quarantined \
                    and not worker.core.stalled:
                # Pin survivors to fmax immediately; on exit the next
                # SetProcessorFreq decisions relax frequencies naturally.
                worker.pin_frequency(worker.core.pstates.max_freq)


__all__ = ["ResilienceController", "drain_worker_queue",
           "redistribute_requests"]
