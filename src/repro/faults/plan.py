"""Fault plans: the declarative description of what breaks, and when.

A :class:`FaultPlan` is pure data --- a list of timed fault windows plus
a :class:`DegradationPolicy` describing which graceful-degradation
mechanisms are armed.  The :mod:`repro.faults.injector` turns the plan
into simulator events; nothing here touches simulation state, so a plan
can be hashed, serialized, and compared without running anything.

Enable contract (same shape as simsan / tracing):

* Environment: ``REPRO_FAULTS=<scenario-name-or-json-path>`` applies a
  plan to every experiment that does not set one explicitly.
* Per run: ``ExperimentConfig(faults=FaultPlan(...))`` --- or a scenario
  name / JSON path string --- overrides the environment in either
  direction (``faults=None`` defers to the environment; there is no
  env-set-but-force-off spelling because an *empty* plan is inert by
  construction and serves that purpose).

Determinism: a plan is part of the experiment's identity.  Two runs
with the same ``(config, seed, plan)`` are byte-identical; the sweep
cache salts its keys with :func:`plan_fingerprint` so faulted results
can never masquerade as healthy ones.

All times are virtual-clock **seconds**, absolute from simulation start
(warmup included), matching the engine convention.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

#: Environment variable naming a scenario (or a JSON plan file) that
#: applies to every experiment not configured explicitly.
FAULTS_ENV = "REPRO_FAULTS"


@dataclass(frozen=True)
class MsrFaultSpec:
    """DVFS write failures at the ``MsrFile.write`` boundary.

    During ``[start_s, end_s)`` a write to ``IA32_PERF_CTL`` on an
    affected worker either raises :class:`~repro.cpu.msr.MsrError`
    (``mode="error"``) or is silently dropped, pinning the core at its
    current P-state (``mode="stuck"`` --- the firmware-eats-the-write
    failure).  ``probability`` < 1 makes individual writes fail with
    that chance, drawn from the injector's dedicated RNG stream.
    """

    start_s: float
    end_s: float
    mode: str = "error"  # "error" | "stuck"
    #: Affected worker ids; empty tuple means every worker.
    workers: Tuple[int, ...] = ()
    probability: float = 1.0

    def __post_init__(self):
        if self.mode not in ("error", "stuck"):
            raise ValueError(f"unknown MSR fault mode {self.mode!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class ThrottleSpec:
    """A thermal-throttle envelope: frequencies capped below a ceiling.

    During ``[start_s, end_s)`` the affected cores cannot operate above
    ``ceiling_ghz``: requests for higher P-states are clamped to the
    fastest table frequency at or below the ceiling, and a core already
    running hotter is stepped down when the window opens.
    """

    start_s: float
    end_s: float
    ceiling_ghz: float = 1.6
    workers: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.ceiling_ghz <= 0:
            raise ValueError("ceiling must be positive")
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class StallSpec:
    """A core freeze: the worker stops making progress at ``at_s``.

    ``duration_s`` bounds the stall (a contention/SMI-style hiccup);
    ``None`` means the core never recovers --- the dying-core scenario.
    A stalled core banks the progress of its in-flight transaction and
    resumes it (if ever) where it left off.
    """

    at_s: float
    duration_s: Optional[float] = None
    workers: Tuple[int, ...] = (0,)

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError("stall time cannot be negative")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("stall duration must be positive (or None)")


@dataclass(frozen=True)
class BurstSpec:
    """An arrival burst: offered load multiplied during a window."""

    start_s: float
    end_s: float
    multiplier: float = 2.0

    def __post_init__(self):
        if self.multiplier <= 0:
            raise ValueError("burst multiplier must be positive")
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class SkewSpec:
    """Estimator misprediction: ``mu(c, f)`` scaled during a window.

    ``factor`` < 1 makes POLARIS optimistic (it under-provisions and
    misses deadlines); > 1 makes it pessimistic (it over-provisions and
    burns power).
    """

    start_s: float
    end_s: float
    factor: float = 0.5

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError("skew factor must be positive")
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class NodeCrashSpec:
    """Fail-stop crash of fleet nodes at ``at_s`` (fleet cells only).

    A crashed node stops cold: its in-flight and queued requests die
    with it, its wall draw drops to zero, and the buffered-but-unforced
    tail of its shard's WAL is lost via ``LogManager.crash()`` --- the
    group-commit window is exactly the durability hole this spec
    exposes.  ``nodes`` names target node ids; the empty tuple means
    the *primary of every shard* (the crash-per-shard chaos plan the
    acceptance test pins).
    """

    at_s: float
    nodes: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError("crash time cannot be negative")


@dataclass(frozen=True)
class PartitionSpec:
    """Replication partition: replicas stop acking during a window.

    During ``[start_s, end_s)`` the affected shards' replicas apply
    nothing new --- their applied-LSN freezes and their effective lag
    grows without bound, so every read routed to them is stale and
    bounces (or is served degraded when the primary is down).  The
    partition heals at ``end_s``.  ``shards`` names affected shard ids;
    empty means every shard.
    """

    start_s: float
    end_s: float
    shards: Tuple[int, ...] = ()

    def __post_init__(self):
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class ReplicaLagSpec:
    """Slow follower: extra apply lag on replicas during a window.

    ``extra_lag_s`` is added on top of each affected replica's seeded
    base lag --- the overloaded-apply-thread failure mode, milder than
    a partition.  ``nodes`` names affected node ids; empty means every
    replica.
    """

    start_s: float
    end_s: float
    extra_lag_s: float = 0.25
    nodes: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.extra_lag_s <= 0:
            raise ValueError("extra lag must be positive")
        _check_window(self.start_s, self.end_s)


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0 or end_s <= start_s:
        raise ValueError(
            f"fault window [{start_s}, {end_s}) must be non-negative "
            f"and non-empty")


@dataclass(frozen=True)
class DegradationPolicy:
    """Which graceful-degradation mechanisms are armed, with thresholds.

    Everything defaults to *off* so ``DegradationPolicy()`` (and hence
    ``FaultPlan()``) is inert --- attaching an empty plan must be
    bit-identical to not attaching one.
    """

    #: Bounded retry of failed/ineffective MSR writes: attempts beyond
    #: the first, 0 disables.  Retry ``k`` fires ``retry_backoff_s *
    #: 2**k`` seconds after the failure (deterministic exponential
    #: backoff on the virtual clock); after the last retry the worker
    #: falls back to the nearest achievable lower P-state.
    msr_retry_limit: int = 0
    retry_backoff_s: float = 0.001
    #: Virtual-time watchdog cadence; None disables the watchdog.
    watchdog_interval_s: Optional[float] = None
    #: A core stalled longer than this is declared dead: its queued
    #: requests migrate to healthy workers (EDF re-sorted) and the
    #: worker is quarantined from routing.
    watchdog_stall_threshold_s: float = 0.05
    #: Admission control: shed arrivals routed to a worker whose queue
    #: is already this deep; None disables shedding.
    shed_queue_depth: Optional[int] = None
    #: Panic mode: when the windowed deadline-miss rate crosses
    #: ``panic_enter_miss_rate`` the surviving cores pin to the maximum
    #: frequency, exiting (hysteretically) only once the rate falls to
    #: ``panic_exit_miss_rate``.  None disables panic mode.
    panic_enter_miss_rate: Optional[float] = None
    panic_exit_miss_rate: float = 0.05
    #: Completions in the panic-mode sliding window.
    panic_window: int = 50

    def __post_init__(self):
        if self.msr_retry_limit < 0:
            raise ValueError("retry limit cannot be negative")
        if self.retry_backoff_s <= 0:
            raise ValueError("retry backoff must be positive")
        if self.watchdog_interval_s is not None \
                and self.watchdog_interval_s <= 0:
            raise ValueError("watchdog interval must be positive")
        if self.watchdog_stall_threshold_s <= 0:
            raise ValueError("watchdog stall threshold must be positive")
        if self.shed_queue_depth is not None and self.shed_queue_depth < 1:
            raise ValueError("shed queue depth must be >= 1")
        if self.panic_enter_miss_rate is not None:
            if not 0.0 < self.panic_enter_miss_rate <= 1.0:
                raise ValueError("panic enter rate must be in (0, 1]")
            if not 0.0 <= self.panic_exit_miss_rate \
                    < self.panic_enter_miss_rate:
                raise ValueError(
                    "panic exit rate must be below the enter rate "
                    "(hysteresis)")
        if self.panic_window < 1:
            raise ValueError("panic window must be >= 1")

    @property
    def any_enabled(self) -> bool:
        return bool(self.msr_retry_limit
                    or self.watchdog_interval_s is not None
                    or self.shed_queue_depth is not None
                    or self.panic_enter_miss_rate is not None)


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic chaos scenario: faults + degradation policy."""

    msr_faults: Tuple[MsrFaultSpec, ...] = ()
    throttles: Tuple[ThrottleSpec, ...] = ()
    stalls: Tuple[StallSpec, ...] = ()
    bursts: Tuple[BurstSpec, ...] = ()
    skews: Tuple[SkewSpec, ...] = ()
    #: Fleet-scope faults (fleet cells only; single-server cells reject
    #: plans carrying any of these).
    node_crashes: Tuple[NodeCrashSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    replica_lags: Tuple[ReplicaLagSpec, ...] = ()
    degradation: DegradationPolicy = field(default_factory=DegradationPolicy)
    #: Human-readable scenario name (reports and trace annotations).
    name: str = "custom"

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when attaching this plan cannot change a run."""
        return not (self.msr_faults or self.throttles or self.stalls
                    or self.bursts or self.skews or self.node_crashes
                    or self.partitions or self.replica_lags
                    or self.degradation.any_enabled)

    @property
    def has_fleet_faults(self) -> bool:
        """True when the plan carries cluster-scope faults (fleet only)."""
        return bool(self.node_crashes or self.partitions
                    or self.replica_lags)

    @property
    def has_server_faults(self) -> bool:
        """True when the plan carries single-server faults (bursts are
        load-side and run at either tier, so they count for neither)."""
        return bool(self.msr_faults or self.throttles or self.stalls
                    or self.skews)

    def without_degradation(self) -> "FaultPlan":
        """The same faults with every resilience mechanism disarmed
        (the no-degradation comparison arm of the resilience figure)."""
        return replace(self, degradation=DegradationPolicy(),
                       name=f"{self.name}-bare")

    def merged_with(self, other: "FaultPlan") -> "FaultPlan":
        """Union of both plans' faults; ``other``'s degradation policy
        wins wherever it arms a mechanism this plan leaves off."""
        mine = self.degradation
        theirs = other.degradation
        degradation = DegradationPolicy(
            msr_retry_limit=max(mine.msr_retry_limit,
                                theirs.msr_retry_limit),
            retry_backoff_s=(theirs.retry_backoff_s
                             if theirs.msr_retry_limit
                             else mine.retry_backoff_s),
            watchdog_interval_s=(theirs.watchdog_interval_s
                                 if theirs.watchdog_interval_s is not None
                                 else mine.watchdog_interval_s),
            watchdog_stall_threshold_s=(
                theirs.watchdog_stall_threshold_s
                if theirs.watchdog_interval_s is not None
                else mine.watchdog_stall_threshold_s),
            shed_queue_depth=(theirs.shed_queue_depth
                              if theirs.shed_queue_depth is not None
                              else mine.shed_queue_depth),
            panic_enter_miss_rate=(
                theirs.panic_enter_miss_rate
                if theirs.panic_enter_miss_rate is not None
                else mine.panic_enter_miss_rate),
            panic_exit_miss_rate=(
                theirs.panic_exit_miss_rate
                if theirs.panic_enter_miss_rate is not None
                else mine.panic_exit_miss_rate),
            panic_window=(theirs.panic_window
                          if theirs.panic_enter_miss_rate is not None
                          else mine.panic_window),
        )
        return FaultPlan(
            msr_faults=self.msr_faults + other.msr_faults,
            throttles=self.throttles + other.throttles,
            stalls=self.stalls + other.stalls,
            bursts=self.bursts + other.bursts,
            skews=self.skews + other.skews,
            node_crashes=self.node_crashes + other.node_crashes,
            partitions=self.partitions + other.partitions,
            replica_lags=self.replica_lags + other.replica_lags,
            degradation=degradation,
            name=f"{self.name}+{other.name}",
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        def tup(key: str, spec_cls):
            entries = payload.get(key, ()) or ()
            specs = []
            for entry in entries:
                entry = dict(entry)
                # JSON round-trips tuples as lists; restore every
                # id-tuple field (reprolint RL120 audits that each
                # *Spec class survives this path).
                for ids_field in ("workers", "nodes", "shards"):
                    if ids_field in entry:
                        entry[ids_field] = tuple(entry[ids_field])
                specs.append(spec_cls(**entry))
            return tuple(specs)

        degradation = DegradationPolicy(**payload.get("degradation", {}))
        return cls(
            msr_faults=tup("msr_faults", MsrFaultSpec),
            throttles=tup("throttles", ThrottleSpec),
            stalls=tup("stalls", StallSpec),
            bursts=tup("bursts", BurstSpec),
            skews=tup("skews", SkewSpec),
            node_crashes=tup("node_crashes", NodeCrashSpec),
            partitions=tup("partitions", PartitionSpec),
            replica_lags=tup("replica_lags", ReplicaLagSpec),
            degradation=degradation,
            name=str(payload.get("name", "custom")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Stable content hash of the plan (cache-key salt)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


#: What an experiment may pass as its ``faults`` knob.
FaultsLike = Union[None, str, FaultPlan]


def resolve_fault_plan(faults: FaultsLike = None) -> Optional[FaultPlan]:
    """Resolve the plan for a run being constructed.

    An explicit :class:`FaultPlan` wins; a string names a scenario from
    the library (``"burst"``, ``"burst+brownout"``) or a JSON plan file
    path; ``None`` defers to the :data:`FAULTS_ENV` environment
    variable (unset or blank -> no faults).
    """
    if isinstance(faults, FaultPlan):
        return None if faults.is_empty else faults
    spec = faults if faults is not None \
        else os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    plan = _load_spec(spec)
    return None if plan.is_empty else plan


def _load_spec(spec: str) -> FaultPlan:
    if spec.endswith(".json") or os.path.sep in spec:
        with open(spec, "r", encoding="utf-8") as fh:
            return FaultPlan.from_json(fh.read())
    from repro.faults.scenarios import scenario_named  # cycle guard
    return scenario_named(spec)


def plan_fingerprint(faults: FaultsLike = None) -> Optional[str]:
    """Fingerprint of the resolved plan, ``None`` when faults are off.

    The sweep cache mixes this into every key, exactly as it salts the
    simsan and trace flags: a faulted run can never answer for a
    healthy cell, and distinct plans never collide.
    """
    plan = resolve_fault_plan(faults)
    return None if plan is None else plan.fingerprint()


__all__ = [
    "FAULTS_ENV", "BurstSpec", "DegradationPolicy", "FaultPlan",
    "FaultsLike", "MsrFaultSpec", "NodeCrashSpec", "PartitionSpec",
    "ReplicaLagSpec", "SkewSpec", "StallSpec", "ThrottleSpec",
    "plan_fingerprint", "resolve_fault_plan",
]
