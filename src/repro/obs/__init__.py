"""repro.obs --- deterministic tracing and time-series metrics.

The observability subsystem records *why* the simulated system did what
it did: per-transaction spans (enqueue -> dispatch -> execute ->
complete), instant events for scheduler decisions (EDF dispatches,
SetProcessorFreq selections with the slack estimate that drove them,
P-state transitions, governor samples), and Prometheus-style time-series
metrics (queue depth, per-core frequency, power draw, deadline misses)
sampled on the simulator's **virtual clock** --- so every trace is a
bit-deterministic function of ``(ExperimentConfig, seed)``.

Three layers:

* :mod:`repro.obs.trace` --- the :class:`Tracer` event sink and the
  ``REPRO_TRACE`` enable hook (same no-op-when-disabled pattern as
  simsan: components test one pre-resolved boolean).
* :mod:`repro.obs.metrics` --- counters/gauges/histograms and the
  virtual-time :class:`MetricsSampler`.
* :mod:`repro.obs.export` --- Chrome trace-event / Perfetto JSON
  (open the file at ``ui.perfetto.dev``), CSV series dumps, a
  structural validator, and a plain-text summary report.
"""

from repro.obs.export import (
    build_trace_events, export_chrome_trace, export_series_csv,
    trace_summary, validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricRegistry, MetricsSampler,
)
from repro.obs.trace import (
    NULL_TRACER, TRACE_ENV, TraceTrack, Tracer, resolve_tracer,
    trace_enabled,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricRegistry", "MetricsSampler",
    "NULL_TRACER", "TRACE_ENV", "TraceTrack", "Tracer",
    "build_trace_events", "export_chrome_trace", "export_series_csv",
    "resolve_tracer", "trace_enabled", "trace_summary",
    "validate_chrome_trace",
]
