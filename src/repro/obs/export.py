"""Exporters: Chrome trace-event JSON, CSV series, summary report.

``export_chrome_trace`` writes the ``{"traceEvents": [...]}`` object
format that both ``chrome://tracing`` and ``ui.perfetto.dev`` load
directly.  Output is canonicalised (sorted keys, no whitespace) so two
same-seed runs produce **byte-identical** files --- the property the
determinism tests and CI pin down.

``validate_chrome_trace`` is the structural checker CI runs against
the smoke trace: valid JSON, integer microsecond timestamps, monotone
``ts`` per (pid, tid) track, balanced B/E stacks, and matched async
b/e pairs per (cat, id).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsSampler
from repro.obs.trace import Tracer

#: Phases understood by the validator (the subset the tracer emits).
_KNOWN_PHASES = frozenset({"B", "E", "X", "i", "I", "C", "b", "n", "e",
                           "M"})


def build_trace_events(tracer: Tracer) -> List[Dict[str, object]]:
    """The tracer's events as Chrome trace-event dicts.

    Prepends ``M`` metadata records naming each registered track's
    process and thread (what Perfetto shows in the left rail), then
    emits the recorded events in recording order --- which is virtual-
    time order, so every track's ``ts`` sequence is monotone.
    """
    out: List[Dict[str, object]] = []
    for track in tracer.tracks():
        out.append({"ph": "M", "pid": track.pid, "tid": track.tid,
                    "name": "process_name", "ts": 0,
                    "args": {"name": track.process}})
        out.append({"ph": "M", "pid": track.pid, "tid": track.tid,
                    "name": "thread_name", "ts": 0,
                    "args": {"name": track.thread}})
    for ev in tracer.events:
        rec: Dict[str, object] = {"ph": ev.ph, "ts": ev.ts_us,
                                  "pid": ev.pid, "tid": ev.tid,
                                  "name": ev.name}
        if ev.cat is not None:
            rec["cat"] = ev.cat
        if ev.scope_id is not None:
            rec["id"] = ev.scope_id
        if ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        if ev.args:
            rec["args"] = ev.args
        out.append(rec)
    return out


def export_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the canonical Perfetto-loadable JSON file.

    Returns the number of trace events written (metadata included).
    ``sort_keys`` + compact separators make the bytes a pure function
    of the event list, i.e. of ``(ExperimentConfig, seed)``.
    """
    events = build_trace_events(tracer)
    payload = {"displayTimeUnit": "ms", "traceEvents": events}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(events)


def export_series_csv(sampler: MetricsSampler, path: str) -> int:
    """Dump every sampled series as long-form CSV rows.

    Columns: ``metric,t_s,value``; metrics in name order, samples in
    time order.  Returns the number of data rows written.
    """
    rows = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("metric,t_s,value\n")
        for name in sorted(sampler.series):
            for t_s, value in sampler.series[name]:
                fh.write(f"{name},{t_s!r},{value!r}\n")
                rows += 1
    return rows


def validate_chrome_trace(path: str) -> Dict[str, object]:
    """Structurally validate an exported trace file.

    Raises ``ValueError`` describing the first violation; on success
    returns a stats dict (event/track counts, span balance) the CI
    smoke step prints.  Checks:

    * the file parses as JSON with a ``traceEvents`` list;
    * every event has a known ``ph``, integer ``ts``/``pid``/``tid``;
    * per (pid, tid) track, ``ts`` never decreases;
    * per track, B/E nest correctly and the file ends balanced;
    * per (cat, id), async b/e pairs match and end closed.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("traceEvents"), list):
        raise ValueError(f"{path}: missing traceEvents list")
    events = payload["traceEvents"]

    last_ts: Dict[Tuple[int, int], int] = {}
    open_spans: Dict[Tuple[int, int], int] = {}
    open_async: Dict[Tuple[str, object], int] = {}
    counts: Dict[str, int] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"{path}: event {i} has unknown ph {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        for field in ("ts", "pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ValueError(
                    f"{path}: event {i} ({ph}) field {field!r} is "
                    f"{ev.get(field)!r}, expected int")
        if ph == "M":
            continue  # metadata carries ts=0; not a timeline event
        key = (ev["pid"], ev["tid"])
        prev = last_ts.get(key)
        if prev is not None and ev["ts"] < prev:
            raise ValueError(
                f"{path}: event {i} ({ph} {ev.get('name')!r}) ts "
                f"{ev['ts']} < {prev} on track pid={key[0]} "
                f"tid={key[1]} --- per-track ts must be monotone")
        last_ts[key] = ev["ts"]
        if ph == "B":
            open_spans[key] = open_spans.get(key, 0) + 1
        elif ph == "E":
            depth = open_spans.get(key, 0)
            if depth == 0:
                raise ValueError(
                    f"{path}: event {i} E {ev.get('name')!r} closes a "
                    f"span that was never opened on pid={key[0]} "
                    f"tid={key[1]}")
            open_spans[key] = depth - 1
        elif ph in ("b", "n", "e"):
            akey = (ev.get("cat"), ev.get("id"))
            if akey[0] is None or akey[1] is None:
                raise ValueError(
                    f"{path}: event {i} async {ph} missing cat/id")
            if ph == "b":
                open_async[akey] = open_async.get(akey, 0) + 1
            elif ph == "e":
                depth = open_async.get(akey, 0)
                if depth == 0:
                    raise ValueError(
                        f"{path}: event {i} async e {ev.get('name')!r} "
                        f"closes {akey} which was never opened")
                open_async[akey] = depth - 1

    dangling = {k: d for k, d in open_spans.items() if d}
    if dangling:
        raise ValueError(f"{path}: unbalanced B/E spans on tracks "
                         f"{sorted(dangling)}")
    dangling_async = sorted(
        f"{cat}:{aid}" for (cat, aid), d in open_async.items() if d)
    if dangling_async:
        raise ValueError(f"{path}: unclosed async spans "
                         f"{dangling_async}")
    return {
        "events": len(events),
        "tracks": len(last_ts),
        "phase_counts": counts,
    }


def trace_summary(tracer: Tracer,
                  sampler: Optional[MetricsSampler] = None,
                  title: str = "trace summary") -> str:
    """A plain-text report of what a trace contains.

    Reuses :mod:`repro.metrics.report` so traced runs summarise in the
    same visual language as the figure tables: one table of per-phase
    event counts per track, and (when a sampler is given) one line per
    series with min/mean/max and a sparkline.
    """
    from repro.metrics.report import format_series, format_table, sparkline

    per_track: Dict[Tuple[int, int], Dict[str, int]] = {}
    names: Dict[Tuple[int, int], str] = {}
    for track in tracer.tracks():
        names[(track.pid, track.tid)] = f"{track.process}/{track.thread}"
    for ev in tracer.events:
        key = (ev.pid, ev.tid)
        bucket = per_track.setdefault(key, {})
        bucket[ev.ph] = bucket.get(ev.ph, 0) + 1

    phases = sorted({ph for bucket in per_track.values() for ph in bucket})
    headers = ["track", *phases, "total"]
    rows = []
    for key in sorted(per_track):
        bucket = per_track[key]
        rows.append([names.get(key, f"pid{key[0]}/tid{key[1]}"),
                     *[str(bucket.get(ph, 0)) for ph in phases],
                     str(sum(bucket.values()))])
    lines = [format_table(headers, rows, title=title)]

    if sampler is not None and sampler.series:
        lines.append("")
        for name in sorted(sampler.series):
            values = [v for _, v in sampler.series[name]]
            stats = format_series(
                name, ("min", "mean", "max"),
                (min(values), sum(values) / len(values), max(values)))
            lines.append(f"{stats}  |{sparkline(values, width=40)}|")
    return "\n".join(lines)


__all__ = ["build_trace_events", "export_chrome_trace",
           "export_series_csv", "trace_summary", "validate_chrome_trace"]
