"""The Tracer: a deterministic event sink on the virtual clock.

Components that hold simulation state reach the tracer through their
:class:`~repro.sim.engine.Simulator` (``sim.tracer``), exactly as they
inherit the simsan flag.  Every recording method bails on a single
pre-resolved boolean (:attr:`Tracer.enabled`), and hot paths are
expected to guard with ``if tracer.enabled:`` *before* building
argument dicts, so the disabled subsystem costs one boolean test at
most --- the ``test_bench_trace_*`` microbenchmarks pin this down.

Event model
-----------
The tracer speaks the Chrome trace-event vocabulary (the format
Perfetto ingests):

* **spans** (``B``/``E``) on a *track* --- one worker's non-preemptive
  transaction executions;
* **async spans** (``b``/``e``) tied by a category + id --- one
  transaction's whole life (enqueue to completion), which overlaps
  other transactions on the same worker;
* **instants** (``i``) --- scheduler decisions, P-state transitions,
  governor samples;
* **counters** (``C``) --- per-core frequency, queue depth.

A *track* is a (process, thread) name pair mapped to small integer
ids in registration order, so ids --- like every timestamp --- are a
pure function of the simulation and traces are byte-identical across
same-seed runs.  Timestamps are virtual-clock seconds converted to the
format's mandatory integer microseconds (``ts_us``; see the RL006
audited exemptions).
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, List, Optional, Tuple

#: Environment variable that switches tracing on globally.
TRACE_ENV = "REPRO_TRACE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def trace_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the tracing state for a component being constructed.

    ``override`` is the component's explicit ``trace=`` argument:
    ``True``/``False`` win outright, ``None`` defers to the
    :data:`TRACE_ENV` environment variable (same contract as
    :func:`repro.analysis.sanitizer.simsan_enabled`).
    """
    if override is not None:
        return bool(override)
    return os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY


def to_trace_us(now_s: float) -> int:
    """Virtual seconds -> the trace format's integer microseconds."""
    return int(round(now_s * 1e6))


class TraceTrack:
    """One (process, thread) pair; an opaque handle for emitters."""

    __slots__ = ("pid", "tid", "process", "thread")

    def __init__(self, pid: int, tid: int, process: str, thread: str):
        self.pid = pid
        self.tid = tid
        self.process = process
        self.thread = thread

    def __repr__(self) -> str:
        return (f"<TraceTrack {self.process}/{self.thread} "
                f"pid={self.pid} tid={self.tid}>")


#: Handle returned by :meth:`Tracer.track` while tracing is disabled;
#: never recorded, exists so callers can register tracks unconditionally.
NULL_TRACK = TraceTrack(0, 0, "null", "null")


class TraceEvent:
    """One recorded event (internal storage; exporters shape the JSON)."""

    __slots__ = ("ph", "ts_us", "pid", "tid", "name", "cat", "scope_id",
                 "args")

    def __init__(self, ph: str, ts_us: int, pid: int, tid: int, name: str,
                 cat: Optional[str] = None,
                 scope_id: Optional[int] = None,
                 args: Optional[Dict[str, object]] = None):
        self.ph = ph
        self.ts_us = ts_us
        self.pid = pid
        self.tid = tid
        self.name = name
        self.cat = cat
        self.scope_id = scope_id
        self.args = args

    def __repr__(self) -> str:
        return (f"<TraceEvent {self.ph} {self.name!r} ts_us={self.ts_us} "
                f"pid={self.pid} tid={self.tid}>")


class Tracer:
    """Collects trace events on the virtual clock.

    ``Tracer()`` is enabled; the shared :data:`NULL_TRACER` is the
    disabled instance every un-traced simulation holds.  All recording
    methods take the current virtual time in seconds (``now_s``) ---
    the tracer never reads a clock itself.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self.events: List[TraceEvent] = []
        self._tracks: Dict[Tuple[str, str], TraceTrack] = {}
        self._pids: Dict[str, int] = {}
        self._next_tid: Dict[int, int] = {}
        #: arbitrary caller keys -> dense run-local async ids, so traces
        #: do not depend on process-global counters (Request ids keep
        #: counting across runs; local ids restart at 1 every run).
        self._async_keys: Dict[Hashable, int] = {}
        #: async spans begun but not yet ended: (cat, id) -> name.
        self._open_async: Dict[Tuple[str, int], str] = {}
        #: per-track stack of open B spans (names), for finalize().
        self._open_spans: Dict[Tuple[int, int], List[str]] = {}

    # ------------------------------------------------------------------
    # Track registry
    # ------------------------------------------------------------------
    def track(self, process: str, thread: str) -> TraceTrack:
        """The (deduplicated) track for a process/thread name pair."""
        if not self.enabled:
            return NULL_TRACK
        key = (process, thread)
        existing = self._tracks.get(key)
        if existing is not None:
            return existing
        pid = self._pids.setdefault(process, len(self._pids) + 1)
        tid = self._next_tid.get(pid, 0) + 1
        self._next_tid[pid] = tid
        new = TraceTrack(pid, tid, process, thread)
        self._tracks[key] = new
        return new

    def tracks(self) -> List[TraceTrack]:
        """All registered tracks, in registration order."""
        return list(self._tracks.values())

    def async_id(self, key: Hashable) -> int:
        """Run-local dense id for an arbitrary hashable caller key."""
        local = self._async_keys.get(key)
        if local is None:
            local = len(self._async_keys) + 1
            self._async_keys[key] = local
        return local

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, track: TraceTrack, name: str, now_s: float,
              **args: object) -> None:
        """Open a synchronous span on ``track`` (Chrome ``B``)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent("B", to_trace_us(now_s), track.pid,
                                      track.tid, name, args=args or None))
        self._open_spans.setdefault((track.pid, track.tid), []).append(name)

    def end(self, track: TraceTrack, now_s: float, **args: object) -> None:
        """Close the innermost open span on ``track`` (Chrome ``E``)."""
        if not self.enabled:
            return
        stack = self._open_spans.get((track.pid, track.tid))
        name = stack.pop() if stack else "span"
        self.events.append(TraceEvent("E", to_trace_us(now_s), track.pid,
                                      track.tid, name, args=args or None))

    def instant(self, track: TraceTrack, name: str, now_s: float,
                **args: object) -> None:
        """A zero-duration marker on ``track`` (Chrome ``i``)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent("i", to_trace_us(now_s), track.pid,
                                      track.tid, name, args=args or None))

    def counter(self, track: TraceTrack, name: str, now_s: float,
                **values: float) -> None:
        """A counter sample on ``track`` (Chrome ``C``)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent("C", to_trace_us(now_s), track.pid,
                                      track.tid, name, args=dict(values)))

    def async_begin(self, cat: str, key: Hashable, name: str, now_s: float,
                    track: Optional[TraceTrack] = None,
                    **args: object) -> None:
        """Open an async span identified by ``(cat, key)`` (Chrome ``b``)."""
        if not self.enabled:
            return
        track = track or self.track(cat, cat)
        aid = self.async_id(key)
        self._open_async[(cat, aid)] = name
        self.events.append(TraceEvent("b", to_trace_us(now_s), track.pid,
                                      track.tid, name, cat=cat,
                                      scope_id=aid, args=args or None))

    def async_instant(self, cat: str, key: Hashable, name: str,
                      now_s: float, track: Optional[TraceTrack] = None,
                      **args: object) -> None:
        """A step marker inside an open async span (Chrome ``n``)."""
        if not self.enabled:
            return
        track = track or self.track(cat, cat)
        self.events.append(TraceEvent("n", to_trace_us(now_s), track.pid,
                                      track.tid, name, cat=cat,
                                      scope_id=self.async_id(key),
                                      args=args or None))

    def async_end(self, cat: str, key: Hashable, name: str, now_s: float,
                  track: Optional[TraceTrack] = None,
                  **args: object) -> None:
        """Close the async span identified by ``(cat, key)`` (Chrome ``e``)."""
        if not self.enabled:
            return
        track = track or self.track(cat, cat)
        aid = self.async_id(key)
        self._open_async.pop((cat, aid), None)
        self.events.append(TraceEvent("e", to_trace_us(now_s), track.pid,
                                      track.tid, name, cat=cat,
                                      scope_id=aid, args=args or None))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finalize(self, now_s: float) -> int:
        """Close every span still open at ``now_s``.

        A truncated run (drain limit hit mid-transaction) leaves B
        spans and async spans dangling; exporting those unbalanced
        would fail the trace-format validator, so the harness closes
        them at the final virtual time.  Returns how many spans were
        closed.
        """
        if not self.enabled:
            return 0
        closed = 0
        ts = to_trace_us(now_s)
        for (pid, tid), stack in sorted(self._open_spans.items()):
            while stack:
                name = stack.pop()
                self.events.append(TraceEvent("E", ts, pid, tid, name,
                                              args={"truncated": True}))
                closed += 1
        for (cat, aid), name in sorted(self._open_async.items()):
            track = self.track(cat, cat)
            self.events.append(TraceEvent("e", ts, track.pid, track.tid,
                                          name, cat=cat, scope_id=aid,
                                          args={"truncated": True}))
            closed += 1
        self._open_async.clear()
        return closed

    def clear(self) -> None:
        """Drop all recorded events and registries (reuse in tests)."""
        self.events.clear()
        self._tracks.clear()
        self._pids.clear()
        self._next_tid.clear()
        self._async_keys.clear()
        self._open_async.clear()
        self._open_spans.clear()

    def __len__(self) -> int:
        return len(self.events)


#: The shared disabled tracer: every recording method is a guarded
#: no-op, so holding it costs one attribute slot and each hook one
#: boolean test.
NULL_TRACER = Tracer(enabled=False)


def resolve_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """The tracer a simulation should carry.

    An explicit instance wins; otherwise ``REPRO_TRACE`` decides
    between a fresh enabled tracer and the shared :data:`NULL_TRACER`.
    """
    if tracer is not None:
        return tracer
    return Tracer() if trace_enabled() else NULL_TRACER


__all__ = [
    "NULL_TRACER", "NULL_TRACK", "TRACE_ENV", "TraceEvent", "TraceTrack",
    "Tracer", "resolve_tracer", "to_trace_us", "trace_enabled",
]
