"""Prometheus-style metric primitives sampled on virtual time.

A :class:`MetricRegistry` owns named :class:`Counter`/:class:`Gauge`/
:class:`Histogram` instruments.  Instruments are updated by the code
under test (worker completion hooks, the power meter) and *sampled*
periodically by a :class:`MetricsSampler`, a self-rescheduling
simulation event (the ``PowerMeter`` pattern) that snapshots every
instrument into in-memory time series and mirrors each sample onto the
tracer as a Chrome counter track.

Like the tracer, everything runs on the virtual clock: two same-seed
runs produce identical series, and the sampler never outlives the
drain loop because the harness checks for idle *before* stepping.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import NULL_TRACER, Tracer


class Counter:
    """A monotonically increasing count (completions, misses, rejects)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value; either set explicitly or read lazily.

    Pass ``fn`` to bind the gauge to a live accessor (queue depth,
    core frequency): each sample calls it, so the registry never holds
    stale copies of simulation state.
    """

    __slots__ = ("name", "help", "fn", "value")

    def __init__(self, name: str, help: str = "",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self.fn = fn
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def sample(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value


class Histogram:
    """Cumulative bucket counts plus sum/count (latency distributions)."""

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "total")

    #: Default latency buckets, in seconds (sub-ms to multi-second).
    DEFAULT_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                      0.25, 0.5, 1.0, 2.5)

    def __init__(self, name: str, help: str = "",
                 bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def sample(self) -> float:
        """Histograms sample as their running mean (series-friendly)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q`` quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return float("inf")
        return float("inf")


class MetricRegistry:
    """Named instruments, registered once and iterated in name order."""

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _register(self, metric):
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(Gauge(name, help, fn))

    def histogram(self, name: str, help: str = "",
                  bounds: Sequence[float] = Histogram.DEFAULT_BOUNDS
                  ) -> Histogram:
        return self._register(Histogram(name, help, bounds))

    def get(self, name: str):
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def sample_all(self) -> List[Tuple[str, float]]:
        """One (name, value) snapshot per instrument, name-sorted."""
        metrics = self._metrics
        return [(name, metrics[name].sample()) for name in sorted(metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


class MetricsSampler:
    """Snapshots a registry on a fixed virtual-time cadence.

    Schedules itself on the simulator like ``PowerMeter``: ``start()``
    plants the first sample, each sample re-plants the next.  The
    harness drain loop checks ``sim.idle`` before ``sim.step()``, so a
    pending sampler event never keeps a finished run alive --- it is
    simply left cancelled/unfired when the loop exits.
    """

    __slots__ = ("sim", "registry", "interval_s", "tracer", "series",
                 "_event", "_track")

    def __init__(self, sim, registry: MetricRegistry,
                 interval_s: float = 0.25,
                 tracer: Optional[Tracer] = None):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.sim = sim
        self.registry = registry
        self.interval_s = float(interval_s)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: metric name -> list of (t_s, value) samples.
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        self._event = None
        self._track = self.tracer.track("metrics", "sampler")

    def start(self) -> None:
        """Take the t=now sample and begin the cadence."""
        self._sample()

    def stop(self) -> None:
        """Cancel the pending sample, if any."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _sample(self) -> None:
        now_s = self.sim.now
        tracer = self.tracer
        for name, value in self.registry.sample_all():
            self.series.setdefault(name, []).append((now_s, value))
            if tracer.enabled:
                tracer.counter(self.tracer.track("metrics", name),
                               name, now_s, value=value)
        self._event = self.sim.schedule(self.interval_s, self._sample)

    def sample_once(self) -> None:
        """One extra snapshot at the current time (end-of-run capture)."""
        now_s = self.sim.now
        tracer = self.tracer
        for name, value in self.registry.sample_all():
            points = self.series.setdefault(name, [])
            if points and abs(points[-1][0] - now_s) < 1e-12:
                continue
            points.append((now_s, value))
            if tracer.enabled:
                tracer.counter(self.tracer.track("metrics", name),
                               name, now_s, value=value)


__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry",
           "MetricsSampler"]
