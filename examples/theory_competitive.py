#!/usr/bin/env python3
"""Section 4 in action: YDS, OA, and idealized POLARIS on one instance.

Builds a small standard-model instance, runs all three algorithms, and
prints their schedules and energies --- including the adversarial
two-job instance of Section 4.6 where non-preemption costs POLARIS a
factor approaching ``c^alpha``.

    python examples/theory_competitive.py
"""

import random

from repro.theory import (
    adversarial_pair, oa_schedule, polaris_ideal_schedule,
    random_agreeable_instance, yds_schedule,
)
from repro.theory.yds import yds_energy

ALPHA = 3.0


def describe(name, schedule, instance):
    energy = schedule.energy(ALPHA)
    print(f"  {name:8s} energy={energy:10.4f}  "
          f"max speed={schedule.max_speed():6.3f}  "
          f"segments={len(schedule.segments)}")
    return energy


def main() -> None:
    rng = random.Random(7)

    print("Agreeable instance (Theorem 4.3: POLARIS behaves exactly "
          "like OA):")
    inst = random_agreeable_instance(8, rng)
    yds = yds_schedule(inst)
    yds.check_feasible(inst)
    e_yds = describe("YDS", yds, inst)
    e_oa = describe("OA", oa_schedule(inst), inst)
    polaris = polaris_ideal_schedule(inst)
    polaris.check_feasible(inst, preemptive=False)
    e_p = describe("POLARIS", polaris, inst)
    print(f"  POLARIS/OA = {e_p / e_oa:.6f} (Thm 4.3: 1.0);"
          f"  OA/YDS = {e_oa / e_yds:.3f} "
          f"(bound alpha^alpha = {ALPHA ** ALPHA:.0f})")
    print()

    print("Adversarial pair (Section 4.6: the cost of non-preemption):")
    pair = adversarial_pair(w_max=10.0, w_min=0.1)
    e_yds = yds_energy(pair, ALPHA)
    polaris = polaris_ideal_schedule(pair)
    polaris.check_feasible(pair, preemptive=False)
    e_p = polaris.energy(ALPHA)
    c = pair.c_factor()
    print(f"  YDS energy     = {e_yds:.4f}")
    print(f"  POLARIS energy = {e_p:.4f}")
    print(f"  ratio          = {e_p / e_yds:.3g}")
    print(f"  c^alpha        = {c ** ALPHA:.3g}   "
          f"(c = 1 + w_max/w_min = {c:.0f})")
    print(f"  (c*alpha)^alpha bound of Corollary 4.6 = "
          f"{(c * ALPHA) ** ALPHA:.3g}")
    print()
    print("A tiny urgent job arriving just after a huge lazy one forces")
    print("non-preemptive POLARIS to push both loads through the tight")
    print("deadline; preemptive YDS simply pauses the big job.")


if __name__ == "__main__":
    main()
