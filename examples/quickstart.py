#!/usr/bin/env python3
"""Quickstart: POLARIS vs the OS baselines on TPC-C at medium load.

Runs the paper's core comparison (Figure 6's slack-40 column) on a
small simulated server and prints average wall power and the fraction
of transactions that missed their latency targets.

    python examples/quickstart.py
"""

from repro.harness import ExperimentConfig, run_experiment

SCHEMES = ["static-2.8", "static-2.4", "conservative", "ondemand", "polaris"]


def main() -> None:
    print("TPC-C, medium load (60% of peak), slack 40, 8 workers")
    print(f"{'scheme':14s} {'power (W)':>10s} {'failure rate':>13s} "
          f"{'throughput':>11s}")
    for scheme in SCHEMES:
        config = ExperimentConfig(
            benchmark="tpcc",
            scheme=scheme,
            load_fraction=0.6,   # the paper's "medium" level
            slack=40.0,          # latency target = 40 x mean exec time
            workers=8,
            warmup_seconds=1.0,
            test_seconds=4.0,
            seed=1,
        )
        result = run_experiment(config)
        print(f"{scheme:14s} {result.avg_power_watts:10.1f} "
              f"{result.failure_rate:13.3f} {result.throughput:9.0f}/s")
    print()
    print("POLARIS should show the lowest power without more missed")
    print("deadlines -- the paper's headline result.")


if __name__ == "__main__":
    main()
