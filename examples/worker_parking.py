#!/usr/bin/env python3
"""Beyond the paper: routing policies and C-state parking (Section 8).

The paper's conclusion sketches an extension: control how requests are
*distributed* to workers so idle cores can sink into deep C-states.
This example sweeps routing policy x C-state ladder for POLARIS at low
load and prints what this reproduction finds:

* deep C-states buy a further ~2-3 W under any routing;
* least-loaded routing beats the paper's round-robin on power AND
  failure rate;
* consolidating load ("packing") backfires under per-core DVFS ---
  power is convex in frequency, so many slow cores are cheaper than a
  few fast ones.  The Section 8 intuition needs package-level idle
  states to pay off.

    python examples/worker_parking.py
"""

from repro.harness import ExperimentConfig, run_experiment

GRID = (
    ("rh-round-robin", "c1"),
    ("rh-round-robin", "deep"),
    ("least-loaded", "c1"),
    ("least-loaded", "deep"),
    ("packing", "c1"),
    ("packing", "deep"),
)


def main() -> None:
    print("POLARIS, TPC-C low load (30% of peak), slack 10, 8 workers\n")
    print(f"{'routing':16s} {'C-states':9s} {'power':>8s} {'failures':>9s}")
    for routing, ladder in GRID:
        config = ExperimentConfig(
            scheme="polaris",
            load_fraction=0.3,
            slack=10.0,
            workers=8,
            warmup_seconds=1.0,
            test_seconds=4.0,
            seed=11,
            routing=routing,
            cstate_ladder=ladder,
        )
        result = run_experiment(config)
        print(f"{routing:16s} {ladder:9s} {result.avg_power_watts:7.1f}W "
              f"{result.failure_rate:9.3f}")
    print()
    print("Takeaway: spread work at low frequency (least-loaded) rather")
    print("than concentrate it at high frequency (packing) -- power is")
    print("convex in frequency, so consolidation only pays off with")
    print("package-level sleep states this per-core model excludes.")


if __name__ == "__main__":
    main()
