#!/usr/bin/env python3
"""The substrate at work: functional TPC-C on the storage engine.

The reproduction's database server is not a mock: transactions really
execute against an in-memory storage engine with indexes, row locks,
and a write-ahead log.  This example runs a POLARIS-scheduled workload
in *functional* mode, then verifies TPC-C's consistency conditions and
demonstrates crash recovery from the durable log.

    python examples/functional_database.py
"""

import random

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request
from repro.core.workload import WorkloadManager
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.storage.database import Database
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads import tpcc
from repro.workloads.arrivals import OpenLoopGenerator


def main() -> None:
    # --- build a real TPC-C database -------------------------------------
    config = tpcc.TpccConfig(warehouses=2)
    db = tpcc.build_database(config, seed=99)
    print("Loaded TPC-C database:",
          {name: count for name, count in sorted(
              db.checkpoint_rowcounts().items())})

    # --- run a POLARIS-scheduled server in functional mode ---------------
    sim = Simulator()
    streams = RandomStreams(99)
    spec = tpcc.make_spec()
    estimator = ExecutionTimeEstimator()
    server_config = ServerConfig(workers=2, functional_execution=True)
    server = DatabaseServer(
        sim, server_config,
        scheduler_factory=lambda: PolarisScheduler(
            server_config.scheduler_frequencies, estimator))
    server.attach_functional(db, tpcc.TRANSACTION_BODIES, config,
                             random.Random(7))
    manager = WorkloadManager.per_type_with_slack(spec, slack=50.0)
    service_rng = streams.get("service")

    def on_arrival(now: float) -> None:
        txn_type = spec.choose_type(streams.get("mix"))
        server.submit(Request(manager.get(txn_type.name), txn_type.name,
                              now, txn_type.service.draw_work(service_rng)))

    generator = OpenLoopGenerator.constant(sim, 400.0, on_arrival,
                                           streams.get("arrivals"))
    generator.start()
    sim.run(until=3.0)
    generator.stop()
    server.drain()
    executed = sum(w.completed for w in server.workers)
    print(f"Executed {executed} real transactions "
          f"({db.log.stats.commits} commits, {db.log.stats.aborts} "
          f"rollbacks, {db.log.stats.group_forces} group-commit forces)")

    # --- verify TPC-C consistency conditions -----------------------------
    problems = tpcc.check_consistency(db, config)
    print("Consistency check:",
          "OK" if not problems else f"{len(problems)} violations!")
    for problem in problems[:5]:
        print("  ", problem)

    # --- crash recovery from the durable log -----------------------------
    survivors = db.log.crash()  # drop the buffered tail
    recovered = Database()
    tpcc.create_schema(recovered)
    recovered.recover_from(survivors)
    print(f"Recovered {sum(recovered.checkpoint_rowcounts().values())} rows "
          f"from {len(survivors)} durable log records "
          "(uncommitted tail discarded).")


if __name__ == "__main__":
    main()
