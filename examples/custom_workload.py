#!/usr/bin/env python3
"""Bring your own workload: POLARIS on a custom benchmark.

POLARIS only needs (a) per-request workload labels with latency
targets and (b) measured execution times.  This example defines a
custom two-type key-value-store benchmark --- cheap GETs with a tight
SLA and expensive SCANs with a loose one --- and compares POLARIS
against a fixed peak frequency.

    python examples/custom_workload.py
"""

from repro.core.estimator import ExecutionTimeEstimator
from repro.core.polaris import PolarisScheduler
from repro.core.request import Request
from repro.core.workload import Workload, WorkloadManager
from repro.db.server import DatabaseServer, ServerConfig
from repro.metrics.latency import LatencyRecorder
from repro.metrics.power import PowerMeter
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.arrivals import OpenLoopGenerator
from repro.workloads.base import BenchmarkSpec, ServiceTimeModel, TransactionType

#: GETs: 80 us mean, modest tail, 10 ms latency target (SCANs run
#: non-preemptively ahead of them, so the SLA must absorb one scan).
#: SCANs: 4 ms mean, heavier tail, 200 ms latency target.
KV_SPEC = BenchmarkSpec("kv", [
    TransactionType("Get", 0.9, ServiceTimeModel(80e-6, 200e-6)),
    TransactionType("Scan", 0.1, ServiceTimeModel(4e-3, 9e-3)),
])
TARGETS = {"Get": 10e-3, "Scan": 200e-3}


def run(scheme: str, rate: float, seed: int = 3):
    sim = Simulator()
    streams = RandomStreams(seed)
    server_config = ServerConfig(workers=4)
    estimator = ExecutionTimeEstimator()
    if scheme == "polaris":
        server = DatabaseServer(
            sim, server_config,
            scheduler_factory=lambda: PolarisScheduler(
                server_config.scheduler_frequencies, estimator))
        # Prime the estimators as the paper's training phase would.
        for txn_type in KV_SPEC.types:
            for freq in server_config.scheduler_frequencies:
                estimator.prime(
                    txn_type.name, freq,
                    txn_type.service.p95_seconds * 2.8 / freq, count=50)
    else:
        server = DatabaseServer(sim, server_config, scheduler_factory=None,
                                initial_freq=2.8)

    manager = WorkloadManager(
        Workload(name, target) for name, target in TARGETS.items())
    recorder = LatencyRecorder()
    recorder.set_window(1.0, 5.0)
    server.add_completion_listener(recorder.on_completion)
    meter = PowerMeter(sim, server.wall_energy, streams.get("noise"))
    service_rng = streams.get("service")

    def on_arrival(now: float) -> None:
        txn_type = KV_SPEC.choose_type(streams.get("mix"))
        server.submit(Request(manager.get(txn_type.name), txn_type.name,
                              now, txn_type.service.draw_work(service_rng)))

    generator = OpenLoopGenerator.constant(sim, rate, on_arrival,
                                           streams.get("arrivals"))
    generator.start()
    sim.schedule_at(1.0, meter.start)
    sim.run(until=5.0)
    generator.stop()
    server.drain()
    return meter.average_power(1.0, 5.0), recorder


def main() -> None:
    peak = KV_SPEC.peak_throughput(workers=4)
    rate = 0.5 * peak
    print(f"Custom KV benchmark: 90% GET (2 ms SLA), 10% SCAN "
          f"(100 ms SLA); {rate:.0f} req/s on 4 workers\n")
    print(f"{'scheme':10s} {'power':>8s} {'GET miss':>9s} {'SCAN miss':>10s}")
    for scheme in ("static-2.8", "polaris"):
        power, recorder = run(scheme, rate)
        print(f"{scheme:10s} {power:7.1f}W "
              f"{recorder.workload_failure_rate('Get'):9.3f} "
              f"{recorder.workload_failure_rate('Scan'):10.3f}")
    print()
    print("POLARIS exploits the SCANs' loose SLA to run them slowly,")
    print("saving power, while keeping GETs within their tight SLA.")


if __name__ == "__main__":
    main()
