#!/usr/bin/env python3
"""Workload differentiation: gold vs silver latency tiers (Section 6.5).

Two TPC-C workloads share the server: *gold* requests carry a 7.5 ms
latency target, *silver* requests 37.5 ms.  OS governors cannot tell
them apart, so gold misses its tighter target far more often; POLARIS
is deadline-aware and closes the gap.

    python examples/workload_differentiation.py
"""

from repro.harness import ExperimentConfig, run_experiment


def main() -> None:
    tier_targets = {"gold": 7.5e-3, "silver": 37.5e-3}
    print("Two full-mix TPC-C workloads, half the medium rate each")
    print(f"{'scheme':14s} {'power':>8s} {'gold miss':>10s} "
          f"{'silver miss':>12s} {'gap':>7s}")
    for scheme in ["static-2.8", "conservative", "ondemand", "polaris"]:
        config = ExperimentConfig(
            benchmark="tpcc",
            scheme=scheme,
            load_fraction=0.6,
            workload_policy="tiers",
            tier_targets=tier_targets,
            workers=8,
            warmup_seconds=1.0,
            test_seconds=4.0,
            seed=5,
        )
        result = run_experiment(config)
        gold = result.per_workload_failure.get("gold", 0.0)
        silver = result.per_workload_failure.get("silver", 0.0)
        print(f"{scheme:14s} {result.avg_power_watts:7.1f}W "
              f"{gold:10.3f} {silver:12.3f} {gold - silver:7.3f}")
    print()
    print("Deadline-blind schemes show a large gold/silver gap; POLARIS")
    print("spends its speed where the deadline is tight, equalizing the")
    print("two tiers (paper Figure 11).")


if __name__ == "__main__":
    main()
