#!/usr/bin/env python3
"""Time-varying load: the World Cup trace experiment (Section 6.4).

The TPC-C request rate follows a synthetic trace shaped like the 1998
World Cup access logs, sweeping between 30% and 90% of peak with a new
target each second.  The example prints the normalized load and each
scheme's power timeline as sparklines, plus the summary the paper
reports in Figure 10(b).

    python examples/time_varying_load.py
"""

import random

from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import sparkline
from repro.workloads.traces import synthesize_worldcup_trace

TRACE_SECONDS = 60


def main() -> None:
    trace = synthesize_worldcup_trace(TRACE_SECONDS, random.Random(1998))
    print(f"{TRACE_SECONDS}s trace, rate swept 30%..90% of peak, "
          "slack 50\n")
    print("  load    : " + sparkline(trace, width=50))
    summary = []
    for scheme in ["conservative", "ondemand", "polaris"]:
        config = ExperimentConfig(
            benchmark="tpcc",
            scheme=scheme,
            slack=50.0,
            load_trace=trace,
            workers=8,
            warmup_seconds=1.0,
            timeline_bin_seconds=2.0,
            seed=1998,
        )
        result = run_experiment(config)
        watts = [w for _, w in result.power_timeline]
        print(f"  {scheme:8s}: " + sparkline(watts, width=50))
        summary.append((scheme, result.avg_power_watts,
                        result.failure_rate))
    print()
    print(f"{'scheme':14s} {'avg power (W)':>14s} {'failure rate':>13s}")
    for scheme, power, failure in summary:
        print(f"{scheme:14s} {power:14.1f} {failure:13.3f}")
    print()
    print("All schemes track the load, but POLARIS's adjustments are")
    print("sharper and deeper (paper Figure 10(a)), giving it the lowest")
    print("average power and the fewest missed deadlines.")


if __name__ == "__main__":
    main()
