#!/usr/bin/env python3
"""POLARIS on a key-value store: YCSB core workloads (Section 8).

The paper closes by naming key-value databases as natural POLARIS
targets: short, non-preemptive units of work.  This example runs the
YCSB core mixes A (update-heavy), B (read-heavy), and E (scan-heavy)
through the harness and compares POLARIS against the 2.8 GHz baseline
on each.

    python examples/ycsb_keyvalue.py
"""

from repro.harness import ExperimentConfig, run_experiment

WORKLOADS = ("a", "b", "e")


def main() -> None:
    print("YCSB core workloads, medium load, slack 40, 8 workers\n")
    print(f"{'workload':9s} {'scheme':11s} {'power':>8s} {'failures':>9s} "
          f"{'throughput':>11s}")
    for letter in WORKLOADS:
        for scheme in ("static-2.8", "polaris"):
            config = ExperimentConfig(
                benchmark=f"ycsb-{letter}",
                scheme=scheme,
                load_fraction=0.6,
                slack=40.0,
                workers=8,
                warmup_seconds=0.5,
                test_seconds=2.0,
                seed=2024,
            )
            result = run_experiment(config)
            print(f"ycsb-{letter:4s} {scheme:11s} "
                  f"{result.avg_power_watts:7.1f}W "
                  f"{result.failure_rate:9.3f} "
                  f"{result.throughput:9.0f}/s")
        print()
    print("Short requests and per-type latency targets: the same POLARIS")
    print("machinery transfers unchanged from TPC-C to a key-value mix.")


if __name__ == "__main__":
    main()
