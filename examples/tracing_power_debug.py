#!/usr/bin/env python3
"""Tracing a run: debug POLARIS power behaviour with a Perfetto trace.

Runs the paper's Figure-6 medium-load TPC-C cell with the repro.obs
tracing subsystem enabled, then exports:

* ``polaris-fig6.trace.json`` --- a Chrome trace-event file.  Open it
  at https://ui.perfetto.dev (or chrome://tracing) to see every
  transaction as a span on its worker's track, P-state transitions as
  instant events annotated with the scheduler's frequency decision
  (selected vs floor frequency, queue length, estimated slack), and
  power / queue-depth / per-core-frequency counter tracks.
* ``polaris-fig6.series.csv`` --- the same counter series as CSV for
  offline plotting.

Traces ride the virtual clock, so two runs with the same seed produce
byte-identical files --- diff them after a code change to see exactly
which scheduling decision diverged.

    python examples/tracing_power_debug.py
"""

from repro.harness import ExperimentConfig, run_experiment
from repro.obs import validate_chrome_trace

TRACE_PATH = "polaris-fig6.trace.json"
SERIES_PATH = "polaris-fig6.series.csv"


def main() -> None:
    config = ExperimentConfig(
        benchmark="tpcc",
        scheme="polaris",
        load_fraction=0.6,   # Figure 6's "medium" level
        slack=40.0,
        workers=8,
        warmup_seconds=1.0,
        test_seconds=4.0,
        seed=1,
        trace_path=TRACE_PATH,
        trace_series_path=SERIES_PATH,
        trace_sample_interval_s=0.1,
    )
    result = run_experiment(config)

    stats = validate_chrome_trace(TRACE_PATH)
    print(f"ran {result.completed} transactions at "
          f"{result.avg_power_watts:.1f} W avg wall power")
    print(f"exported {stats['events']} trace events on "
          f"{stats['tracks']} tracks -> {TRACE_PATH}")
    print(f"counter series -> {SERIES_PATH}")
    print()
    print("open the trace at https://ui.perfetto.dev; interesting rows:")
    print("  server/worker-*   exec spans + setfreq decision instants")
    print("  cpu/core-*        pstate:transition instants")
    print("  metrics/*         power_watts, queue_depth_total counters")


if __name__ == "__main__":
    main()
